package fabric

import (
	"sort"

	"nocpu/internal/kvs"
	"nocpu/internal/msg"
	"nocpu/internal/sim"
	"nocpu/internal/smartnic"
)

// Well-known app slots on every fabric machine's NIC.
const (
	// StoreApp is the local KVS shard.
	StoreApp msg.AppID = 1
	// RouterApp is the fabric router; peer frames and client requests
	// both enter through it.
	RouterApp msg.AppID = 2
)

// Router tuning defaults.
const (
	DefaultReplicas       = 2
	DefaultRepRetry       = 500 * sim.Microsecond
	DefaultOpTimeout      = 10 * sim.Millisecond
	DefaultHeartbeatEvery = 1 * sim.Millisecond
	DefaultFailTimeout    = 4 * sim.Millisecond
	DefaultWriteBound     = 128
	// DefaultUpgradeDelay models flashing a config/firmware version onto
	// an out-of-ring machine (fleet reconciliation only).
	DefaultUpgradeDelay = 2 * sim.Millisecond
	// Epoch-lease defaults (Config.Leases). The lease must be shorter
	// than the failure-detection timeout: by the time a majority has
	// declared a machine dead and stopped countersigning, every lease it
	// ever held has lapsed, so the promoted primary's takeover fence
	// (leaseDur + failAfter past the promotion) outlives the old
	// primary's authority.
	DefaultLeaseDuration   = 2 * sim.Millisecond
	DefaultLeaseRenewEvery = 500 * sim.Microsecond
)

// RouterStats counts one machine's fabric activity.
type RouterStats struct {
	Local       uint64 // client ops served by the ingress machine itself
	Remote      uint64 // client ops forwarded to another machine
	HeadRelayed uint64 // ops this head node relayed to shard owners
	WrongOwner  uint64 // FabricReqs refused: responder not the owner
	Applies     uint64 // Replicate frames applied at this backup
	RepFenced   uint64 // Replicate frames fenced by the (epoch, seq) watermark
	Resyncs     uint64 // keys re-replicated after a view change
	SoloAcks    uint64 // writes acked with no live backup in view
	Shed        uint64 // writes refused at the per-key pipeline bound
	ViewChanges uint64
	Timeouts    uint64 // pending client ops that hit OpTimeout
	Reroutes    uint64 // ops re-sent after a WrongOwner redirect

	// Fleet-reconciliation activity (all zero unless a reconciler drives
	// planned membership change through the router).
	RingStaged  uint64 // RingConfig prepares staged
	RingCommits uint64 // staged rings adopted
	RingAborts  uint64 // staged rings dropped
	Xfers       uint64 // keys re-replicated for a staged ring's transfer
	Strays      uint64 // locally purged keys (join wipe + post-adoption strays)
	Cordons     uint64 // cordon orders honored
	Upgrades    uint64 // upgrade orders honored

	// Epoch-lease fencing (all zero unless Config.Leases is set).
	LeaseRenews   uint64 // renewal rounds started
	LeaseGrants   uint64 // countersigns sent to peers
	LeaseRevokes  uint64 // typed renewal refusals sent (sender holds the peer dead)
	LeaseFenced   uint64 // client ops refused with StatusFenced
	LeaseLapses   uint64 // renewal rounds started with the previous lease already expired
	Suspicions    uint64 // directional transport suspicions recorded
	SilenceDeaths uint64 // peers declared dead by the inbound-silence detector
}

// routerConfig is assembled by the Cluster from its Config.
type routerConfig struct {
	id           msg.DeviceID
	head         msg.DeviceID // 0 = decentralized membership
	replicas     int
	vnodes       int
	repRetry     sim.Duration
	opTimeout    sim.Duration
	hbEvery      sim.Duration
	failAfter    sim.Duration
	upgradeDelay sim.Duration
	writeBound   int
	leases       bool
	leaseDur     sim.Duration
	leaseRenew   sim.Duration
}

// pendingReq is a client op forwarded to another machine, awaiting its
// FabricResp.
type pendingReq struct {
	target   msg.DeviceID
	reply    func([]byte)
	tm       *sim.Timer
	payload  []byte
	rerouted bool
}

// writeTask is one mutation moving through a key's replication
// pipeline: local apply, then Replicate to every replication target,
// then the client ack once ALL current targets acked. Sync tasks
// (view-change resync and staged-ring transfer) skip the local apply
// and carry the value read from the store instead.
type writeTask struct {
	key   string
	del   bool
	value []byte
	// payload is the original client request (nil for sync tasks).
	payload []byte
	// reply acks the client (nil for sync tasks).
	reply func([]byte)
	resp  []byte // local store response, held until the backups ack

	sync    bool
	xfer    bool   // sync task counted toward a staged ring's transfer
	xferVer uint32 // the staged ring version the transfer belongs to
	seq     uint64
	// targets is the remaining unacked replication set, recomputed under
	// the current (and staged, when one exists) view on every attempt.
	targets []msg.DeviceID
	acked   map[msg.DeviceID]bool
	tm      *sim.Timer
	done    bool
}

// keyGate serializes a key's mutations: one task in flight, later ones
// wait. Per-key FIFO order is what makes the backup's watermark fencing
// equivalent to "newest write wins".
type keyGate struct {
	cur   *writeTask
	queue []*writeTask
}

// watermark fences replicated applies: a backup applies a Replicate iff
// its (epoch, seq) exceeds the key's watermark (R2).
type watermark struct {
	epoch uint32
	seq   uint64
}

// Router is the fabric brain on each machine's smart NIC: client-side
// shard routing, cross-machine forwarding, primary/backup replication
// with fenced failover, and membership (reactive+gossip, or
// heartbeat-to-head when a head node is configured).
type Router struct {
	cfg   routerConfig
	cl    *Cluster
	ring  *Ring
	store *kvs.Store
	eng   *sim.Engine
	rt    *smartnic.Runtime

	halted bool

	dead  map[msg.DeviceID]bool
	epoch uint32

	// Staged membership (fleet reconciliation). ringVer is the version
	// of the ring this router currently serves; a RingConfig prepare
	// stages pendingRing until the coordinator commits or aborts it.
	// While a ring is staged, mutations replicate to the UNION of
	// current and staged owners, so the data outcome is safe whichever
	// way the transition resolves.
	ringVer        uint32
	pendingRing    *Ring
	pendingVer     uint32
	pendingMembers []msg.DeviceID
	pendingFrom    msg.DeviceID // coordinator to notify on transfer-done
	xferLeft       int          // staged-ring sync tasks still in flight
	xferReported   bool         // transfer-done sent for the staged ring

	// Reconciler-driven machine conditions.
	cordoned  bool
	upgrading bool
	confVer   uint32
	condSeq   uint64
	ctrl      ControlAgent

	dedup msg.DedupWindow

	nextReq uint64
	pending map[uint64]*pendingReq

	repSeq   uint64
	gates    map[string]*keyGate
	inflight map[uint64]*writeTask

	wm map[string]watermark

	hbSeq    uint64
	lastBeat map[msg.DeviceID]sim.Time

	// Epoch-lease fencing (cfg.leases). The machine serves as primary
	// only while leaseUntil is in the future, i.e. while a quorum of the
	// ring membership countersigned its most recent renewal round.
	// lastHeard feeds the inbound-silence failure detector (the renewal
	// chatter gives every pair of ring members periodic traffic, which is
	// what makes silence meaningful); suspects holds directional
	// transport suspicion (I could not reach them — says nothing about
	// whether they can reach me); views holds the takeover-fence history:
	// each entry is a membership view this machine replaced, so a freshly
	// promoted primary refuses any key whose recent-past view named a
	// different primary until every lease that primary could possibly
	// hold has lapsed. A history (rather than a per-key fence map) covers
	// keys the promoted machine holds no replica of — mass view changes
	// promote machines for key ranges they never stored, and those keys
	// must be fenced too.
	leaseSeq   uint64
	leaseRound map[msg.DeviceID]bool
	leaseUntil sim.Time
	lastHeard  map[msg.DeviceID]sim.Time
	suspects   map[msg.DeviceID]bool
	views      []viewSnap

	stats RouterStats
}

// ControlAgent is the fleet-reconciliation policy hook: the router
// dispatches management-plane frames (spec gossip, condition reports)
// to the attached agent and stays pure mechanism. internal/reconcile
// provides the implementation; a nil agent drops the frames.
type ControlAgent interface {
	OnControl(src msg.DeviceID, m msg.Message)
}

func newRouter(cl *Cluster, cfg routerConfig, ring *Ring, store *kvs.Store, eng *sim.Engine) *Router {
	return &Router{
		cfg:      cfg,
		cl:       cl,
		ring:     ring,
		store:    store,
		eng:      eng,
		confVer:  1,
		dead:     make(map[msg.DeviceID]bool),
		pending:  make(map[uint64]*pendingReq),
		gates:    make(map[string]*keyGate),
		inflight: make(map[uint64]*writeTask),
		wm:        make(map[string]watermark),
		lastBeat:  make(map[msg.DeviceID]sim.Time),
		lastHeard: make(map[msg.DeviceID]sim.Time),
		suspects:  make(map[msg.DeviceID]bool),
	}
}

// Stats returns a copy of the counters.
func (r *Router) Stats() RouterStats { return r.stats }

// Epoch returns the router's current view epoch: ring version in the
// high bits, dead machines seen in the low byte. With no planned
// membership changes the ring version stays 0 and the epoch is exactly
// the dead count, as it was before fleet reconciliation existed.
func (r *Router) Epoch() uint32 { return r.epoch }

// recalcEpoch folds the ring version and the dead count into the
// fencing epoch. Both components are monotone (the dead set never
// shrinks; ring versions only grow), so the epoch is monotone per
// router — which is what the per-key (epoch, seq) watermark needs. The
// low byte holds the dead count; machines are addressed in one byte,
// so it cannot overflow into the ring version.
func (r *Router) recalcEpoch() {
	r.epoch = r.ringVer<<8 | uint32(len(r.dead))
}

// AppID implements smartnic.App.
func (r *Router) AppID() msg.AppID { return RouterApp }

// Boot implements smartnic.App. With a head node configured, the head
// arms its failure-sweep timer and everyone else starts heartbeating.
// With leases enabled, every machine also starts its renewal loop and
// takes a bootstrap lease (membership is known-good at boot, so the
// fleet does not start life fenced); the decentralized flavor arms the
// inbound-silence detector too (under a head, heartbeat staleness at
// the head stays the sole death authority).
func (r *Router) Boot(rt *smartnic.Runtime) {
	r.rt = rt
	if r.cfg.leases {
		if r.InRing() {
			r.leaseUntil = r.eng.Now().Add(r.cfg.leaseDur)
		}
		r.armLease()
		if r.cfg.head == 0 {
			r.armSilence()
		}
	}
	if r.cfg.head == 0 {
		return
	}
	if r.isHead() {
		r.armSweep()
	} else {
		r.armHeartbeat()
	}
}

// PeerFailed implements smartnic.App. Intra-machine device failure is
// the machine's own problem; fabric membership is judged at machine
// granularity by the network and the head.
func (r *Router) PeerFailed(msg.DeviceID) {}

func (r *Router) isHead() bool { return r.cfg.head != 0 && r.cfg.head == r.cfg.id }

// --- fleet-reconciliation surface (used by internal/reconcile) ---

// AttachControl installs the machine's reconcile agent.
func (r *Router) AttachControl(a ControlAgent) { r.ctrl = a }

// ID returns the router's machine address.
func (r *Router) ID() msg.DeviceID { return r.cfg.id }

// Head returns the configured head machine (0 when decentralized).
func (r *Router) Head() msg.DeviceID { return r.cfg.head }

// Halted reports whether the machine has crash-stopped.
func (r *Router) Halted() bool { return r.halted }

// RingVer returns the version of the ring this router serves.
func (r *Router) RingVer() uint32 { return r.ringVer }

// PendingVer returns the staged ring version (0 when none is staged).
func (r *Router) PendingVer() uint32 { return r.pendingVer }

// TransferDone reports whether the staged ring's transfer has drained.
// The router pushes one transfer-done report itself (xferCheck), but
// that frame can be lost under an injected fault plane; agents fold
// this level-triggered signal into their periodic condition reports so
// a transition can never wedge on one dropped frame.
func (r *Router) TransferDone() bool {
	return r.pendingRing != nil && r.xferLeft == 0
}

// RingMembers returns the current ring membership in ID order.
func (r *Router) RingMembers() []msg.DeviceID { return r.ring.Machines() }

// InRing reports whether this machine is a member of its current ring.
func (r *Router) InRing() bool { return memberOf(r.ring.Machines(), r.cfg.id) }

// Cordoned reports whether the machine is cordoned off client ingress.
func (r *Router) Cordoned() bool { return r.cordoned }

// Upgrading reports whether a config flash is in progress.
func (r *Router) Upgrading() bool { return r.upgrading }

// ConfigVersion returns the machine's running config/firmware version.
func (r *Router) ConfigVersion() uint32 { return r.confVer }

// DeadIDs returns the machines this router's view has declared dead.
func (r *Router) DeadIDs() []msg.DeviceID { return r.deadList() }

// Conditions assembles this machine's status-condition report
// (machine-controller style). Each call stamps a fresh sequence number.
func (r *Router) Conditions() *msg.CondReport {
	r.condSeq++
	return &msg.CondReport{
		Seq:           r.condSeq,
		Ready:         !r.halted && !r.upgrading,
		Cordoned:      r.cordoned,
		Upgrading:     r.upgrading,
		ConfigVersion: r.confVer,
		RingVer:       r.ringVer,
		PendingVer:    r.pendingVer,
		Keys:          uint32(r.store.Keys()),
	}
}

// SendControl puts a management-plane message on the fabric (or hands
// it straight to the local agent when addressed to this machine).
func (r *Router) SendControl(dst msg.DeviceID, m msg.Message) {
	if r.halted {
		return
	}
	if dst == r.cfg.id {
		// Self-delivery: drain orders are mechanism (the decentralized
		// actor must be able to cordon and rotate ITSELF out of the ring);
		// everything else is policy traffic for the agent.
		if d, ok := m.(*msg.Drain); ok {
			r.onDrain(d)
			return
		}
		if r.ctrl != nil {
			r.ctrl.OnControl(r.cfg.id, m)
		}
		return
	}
	r.cl.net.Send(r.cfg.id, dst, r.epoch, m)
}

// ProposeRing broadcasts a RingConfig phase to every machine the view
// holds live (spares included) and applies it locally — the coordinator
// is a participant like any other. The broadcast happens inside one
// event, so a crash can never split it.
func (r *Router) ProposeRing(ver uint32, phase uint8, members []msg.DeviceID) {
	if r.halted {
		return
	}
	for _, id := range r.cl.MachineIDs() {
		if id == r.cfg.id || r.dead[id] {
			continue
		}
		r.cl.net.Send(r.cfg.id, id, r.epoch, &msg.RingConfig{
			Ver: ver, Phase: phase, Members: append([]msg.DeviceID(nil), members...),
		})
	}
	r.applyRingConfig(r.cfg.id, &msg.RingConfig{Ver: ver, Phase: phase, Members: members})
}

func memberOf(ms []msg.DeviceID, id msg.DeviceID) bool {
	for _, m := range ms {
		if m == id {
			return true
		}
	}
	return false
}

// halt freezes the router when the cluster kills its machine: every
// timer and handler bails, modeling crash-stop.
func (r *Router) halt() { r.halted = true }

// deadList renders the dead set in sorted order (gossip payloads and
// deterministic iteration).
func (r *Router) deadList() []msg.DeviceID {
	out := make([]msg.DeviceID, 0, len(r.dead))
	for id := range r.dead {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// owners is the ring lookup under this router's view.
func (r *Router) owners(key string) []msg.DeviceID {
	return r.ring.Owners(key, r.dead, r.cfg.replicas)
}

// ServeNetwork implements smartnic.App: one byte discriminates peer
// fabric frames (frameMagic) from client kvs requests.
func (r *Router) ServeNetwork(payload []byte, reply func([]byte)) {
	if r.halted {
		return
	}
	if len(payload) > 0 && payload[0] == frameMagic {
		r.onFrame(payload[1:])
		return
	}
	r.onClient(payload, reply)
}

// ServeTenantNetwork implements smartnic.TenantApp: the NIC edge
// authenticated the client as tenant tn, and the stamp is re-encoded
// into the request before routing so it survives fabric hops — the
// owning machine's store sees the same authenticated tenant the entry
// machine did, wherever the key lives.
func (r *Router) ServeTenantNetwork(tn uint16, payload []byte, reply func([]byte)) {
	if r.halted {
		return
	}
	if len(payload) > 0 && payload[0] == frameMagic {
		r.onFrame(payload[1:]) // peer frames carry no tenant
		return
	}
	if tn != 0 {
		if req, err := kvs.DecodeRequest(payload); err == nil {
			req.Tenant = uint32(tn)
			payload = kvs.EncodeRequest(req)
		}
	}
	r.onClient(payload, reply)
}

// --- client ingress ---

func (r *Router) onClient(payload []byte, reply func([]byte)) {
	req, err := kvs.DecodeRequest(payload)
	if err != nil {
		reply(kvs.EncodeResponse(kvs.Response{Status: kvs.StatusError}))
		return
	}
	own := r.owners(req.Key)
	if len(own) == 0 {
		reply(kvs.EncodeResponse(kvs.Response{Status: kvs.StatusUnavailable}))
		return
	}
	if own[0] == r.cfg.id {
		r.stats.Local++
		r.servePrimary(req, payload, reply)
		return
	}
	r.stats.Remote++
	r.forward(own[0], payload, reply, false)
}

// forward sends a client op to the key's primary — directly, or through
// the head node when one is configured (the centralized-routing
// baseline; the owner still answers the origin directly, so only the
// request leg transits the head).
func (r *Router) forward(primary msg.DeviceID, payload []byte, reply func([]byte), rerouted bool) {
	target := primary
	if r.cfg.head != 0 && !r.isHead() {
		target = r.cfg.head
	}
	r.nextReq++
	id := r.nextReq
	p := &pendingReq{target: primary, reply: reply, payload: payload, rerouted: rerouted}
	r.pending[id] = p
	p.tm = r.eng.After(r.cfg.opTimeout, func() {
		if r.halted || r.pending[id] != p {
			return
		}
		delete(r.pending, id)
		r.stats.Timeouts++
		reply(kvs.EncodeResponse(kvs.Response{Status: kvs.StatusUnavailable}))
	})
	r.cl.net.Send(r.cfg.id, target, r.epoch, &msg.FabricReq{
		Origin: r.cfg.id, ReqID: id, Payload: payload,
	})
}

// resolvePending finishes a forwarded op exactly once.
func (r *Router) resolvePending(id uint64, p *pendingReq, resp []byte) {
	if r.pending[id] != p {
		return
	}
	delete(r.pending, id)
	if p.tm != nil {
		p.tm.Stop()
	}
	p.reply(resp)
}

// --- peer frames ---

func (r *Router) onFrame(raw []byte) {
	env, err := msg.Decode(raw)
	if err != nil {
		return // a corrupt frame vanishes, like a bad checksum on a real wire
	}
	if r.cfg.leases {
		// Any inbound frame — even a duplicate — is proof the sender can
		// reach us: feed the silence detector and clear directional
		// transport suspicion.
		r.lastHeard[env.Src] = r.eng.Now()
		delete(r.suspects, env.Src)
	}
	if r.dedup.Duplicate(env.Src, env.Seq) {
		return
	}
	if r.dead[env.Src] {
		// Fencing: traffic from machines this view declared dead is
		// ignored, so a straggler from an old primary can never regress a
		// promoted replica (R2). One exception: a renewal from a machine
		// we hold dead gets a typed LeaseRevoke (carrying our dead set)
		// instead of silence — the fenced machine provably observes why
		// it lost its lease.
		if ren, ok := env.Msg.(*msg.LeaseRenew); ok && r.cfg.leases {
			r.stats.LeaseRevokes++
			r.cl.net.Send(r.cfg.id, env.Src, r.epoch, &msg.LeaseRevoke{Seq: ren.Seq, Dead: r.deadList()})
		}
		return
	}
	switch m := env.Msg.(type) {
	case *msg.FabricReq:
		r.onFabricReq(m)
	case *msg.FabricResp:
		r.onFabricResp(m)
	case *msg.Replicate:
		r.onReplicate(env.Src, m)
	case *msg.ReplicateAck:
		r.onReplicateAck(env.Src, m)
	case *msg.RingUpdate:
		r.noteDead("ring.update", m.Dead...)
	case *msg.Heartbeat:
		if r.isHead() {
			r.lastBeat[env.Src] = r.eng.Now()
		}
	case *msg.RingConfig:
		r.applyRingConfig(env.Src, m)
	case *msg.Drain:
		r.onDrain(m)
	case *msg.SpecGossip, *msg.CondReport:
		// Policy traffic: the router is mechanism only.
		if r.ctrl != nil {
			r.ctrl.OnControl(env.Src, env.Msg)
		}
	case *msg.LeaseRenew:
		r.onLeaseRenew(env.Src, m)
	case *msg.LeaseGrant:
		r.onLeaseGrant(env.Src, m)
	case *msg.LeaseRevoke:
		// A member refused to countersign: its view holds us dead. Merge
		// its dead set (it cannot contain us — noteDead skips self) so we
		// converge toward the majority view instead of renewing blind.
		r.noteDead("revoke", m.Dead...)
	}
}

func (r *Router) onFabricReq(m *msg.FabricReq) {
	req, err := kvs.DecodeRequest(m.Payload)
	if err != nil {
		r.respond(m.Origin, m.ReqID, msg.FabricServed,
			kvs.EncodeResponse(kvs.Response{Status: kvs.StatusError}))
		return
	}
	own := r.owners(req.Key)
	switch {
	case len(own) > 0 && own[0] == r.cfg.id:
		origin, id := m.Origin, m.ReqID
		r.servePrimary(req, m.Payload, func(resp []byte) {
			r.respond(origin, id, msg.FabricServed, resp)
		})
	case r.isHead() && m.Hops == 0 && len(own) > 0:
		// Head relay: forward to the shard owner, origin preserved. Hops
		// guards the (unreachable in a sane view) forwarding loop. A head
		// that lost its lease is fenced like any primary: with the sole
		// authority partitioned away, the whole machine's typed answer is
		// "fenced" — the contrast E21 measures against the decentralized
		// flavor, where only the cut-off side stalls.
		if r.cfg.leases && !r.leaseValid() {
			r.stats.LeaseFenced++
			r.respond(m.Origin, m.ReqID, msg.FabricServed,
				kvs.EncodeResponse(kvs.Response{Status: kvs.StatusFenced}))
			return
		}
		r.stats.HeadRelayed++
		r.cl.net.Send(r.cfg.id, own[0], r.epoch, &msg.FabricReq{
			Origin: m.Origin, ReqID: m.ReqID, Hops: m.Hops + 1, Payload: m.Payload,
		})
	default:
		// Not ours: tell the origin whom we think is dead so it can catch
		// up and re-route.
		r.stats.WrongOwner++
		r.respond(m.Origin, m.ReqID, msg.FabricWrongOwner, nil)
	}
}

// respond sends a FabricResp carrying this router's dead set as gossip.
func (r *Router) respond(origin msg.DeviceID, id uint64, code uint8, resp []byte) {
	r.cl.net.Send(r.cfg.id, origin, r.epoch, &msg.FabricResp{
		ReqID: id, Code: code, Dead: r.deadList(), Payload: resp,
	})
}

func (r *Router) onFabricResp(m *msg.FabricResp) {
	r.noteDead("gossip", m.Dead...)
	p := r.pending[m.ReqID]
	if p == nil {
		return // already timed out or resolved
	}
	if m.Code == msg.FabricServed {
		r.resolvePending(m.ReqID, p, m.Payload)
		return
	}
	// WrongOwner/unavailable: one re-route with the merged view, then
	// give up and let the client retry.
	delete(r.pending, m.ReqID)
	if p.tm != nil {
		p.tm.Stop()
	}
	if p.rerouted {
		p.reply(kvs.EncodeResponse(kvs.Response{Status: kvs.StatusUnavailable}))
		return
	}
	req, err := kvs.DecodeRequest(p.payload)
	if err == nil {
		if own := r.owners(req.Key); len(own) > 0 && own[0] != r.cfg.id {
			r.stats.Reroutes++
			r.forward(own[0], p.payload, p.reply, true)
			return
		} else if len(own) > 0 {
			// The merged view promoted us: serve locally after all.
			r.stats.Reroutes++
			r.servePrimary(req, p.payload, p.reply)
			return
		}
	}
	p.reply(kvs.EncodeResponse(kvs.Response{Status: kvs.StatusUnavailable}))
}

// --- primary path ---

// servePrimary executes one op this machine owns: reads hit the local
// shard directly; mutations enter the key's replication pipeline. With
// leases enabled, both paths are fenced — reads as well as writes,
// because a stale read from a deposed primary is just as nonlinearizable
// as a divergent write — behind the machine lease and the key's
// takeover fence, and every refusal is typed (StatusFenced), never a
// silent divergence.
func (r *Router) servePrimary(req kvs.Request, payload []byte, reply func([]byte)) {
	if r.cfg.leases && (!r.leaseValid() || r.keyFenced(req.Key)) {
		r.stats.LeaseFenced++
		reply(kvs.EncodeResponse(kvs.Response{Status: kvs.StatusFenced}))
		return
	}
	if req.Op != kvs.OpPut && req.Op != kvs.OpDelete {
		r.store.ServeNetwork(payload, reply)
		return
	}
	r.enqueue(&writeTask{
		key: req.Key, del: req.Op == kvs.OpDelete, value: req.Value,
		payload: payload, reply: reply,
	})
}

func (r *Router) enqueue(t *writeTask) {
	g := r.gates[t.key]
	if g == nil {
		g = &keyGate{}
		r.gates[t.key] = g
	}
	if g.cur == nil {
		g.cur = t
		r.startTask(t)
		return
	}
	if len(g.queue) >= r.cfg.writeBound {
		// Bounded pipeline: refuse rather than queue without limit.
		r.stats.Shed++
		if t.reply != nil {
			t.reply(kvs.EncodeResponse(kvs.Response{Status: kvs.StatusShed}))
		}
		return
	}
	g.queue = append(g.queue, t)
}

func (r *Router) startTask(t *writeTask) {
	if r.halted {
		return
	}
	if t.sync {
		// Resync: replicate the key's current value (read under the gate,
		// so no later client write can be overtaken by a stale sync).
		get := kvs.EncodeRequest(kvs.Request{Op: kvs.OpGet, Key: t.key})
		r.store.ServeNetwork(get, func(b []byte) {
			resp, err := kvs.DecodeResponse(b)
			switch {
			case err != nil || resp.Status == kvs.StatusError || resp.Status == kvs.StatusUnavailable:
				r.finishTask(t) // shard unreadable; a later view change retries
			case resp.Status == kvs.StatusNotFound:
				t.del = true
				r.replicate(t)
			default:
				t.value = resp.Value
				r.replicate(t)
			}
		})
		return
	}
	r.store.ServeNetwork(t.payload, func(b []byte) {
		resp, err := kvs.DecodeResponse(b)
		if err != nil || resp.Status != kvs.StatusOK {
			// Local apply failed (shed, unavailable, IO error): the client
			// hears the truth and nothing was replicated.
			if t.reply != nil {
				t.reply(b)
			}
			r.finishTask(t)
			return
		}
		t.resp = b
		r.replicate(t)
	})
}

// repTargets computes the task's replication set: every live owner of
// the key under the current ring, plus — while a ring is staged —
// every live owner under the staged ring, minus this machine. Order is
// ring order (current first), so the set is deterministic.
func (r *Router) repTargets(key string) []msg.DeviceID {
	own := r.owners(key)
	out := make([]msg.DeviceID, 0, len(own))
	for _, id := range own {
		if id != r.cfg.id {
			out = append(out, id)
		}
	}
	if r.pendingRing != nil {
		for _, id := range r.pendingRing.Owners(key, r.dead, r.cfg.replicas) {
			if id != r.cfg.id && !memberOf(out, id) {
				out = append(out, id)
			}
		}
	}
	return out
}

// replicate sends the task's mutation to every replication target and
// acks the client only when all of them acked (R1). The target set is
// recomputed under the live view on every attempt, so dead backups
// drop out; with no live target left the primary is the shard's sole
// owner and acks alone.
func (r *Router) replicate(t *writeTask) {
	if r.halted || t.done {
		return
	}
	t.targets = t.targets[:0]
	for _, id := range r.repTargets(t.key) {
		if !t.acked[id] {
			t.targets = append(t.targets, id)
		}
	}
	if len(t.targets) == 0 {
		if len(t.acked) == 0 {
			r.stats.SoloAcks++
		}
		r.ackTask(t)
		return
	}
	if t.seq == 0 {
		r.repSeq++
		t.seq = r.repSeq
		r.inflight[t.seq] = t
	}
	for _, b := range t.targets {
		r.cl.net.Send(r.cfg.id, b, r.epoch, &msg.Replicate{
			Epoch: r.epoch, Seq: t.seq, Del: t.del, Sync: t.sync,
			Key: t.key, Value: t.value,
		})
	}
	t.tm = r.eng.After(r.cfg.repRetry, func() {
		if r.halted || t.done {
			return
		}
		// Retransmit under the current view: a backup may have changed
		// or vanished since the last attempt.
		r.replicate(t)
	})
}

func (r *Router) onReplicate(src msg.DeviceID, m *msg.Replicate) {
	w := r.wm[m.Key]
	newer := m.Epoch > w.epoch || (m.Epoch == w.epoch && m.Seq > w.seq)
	if !newer {
		// Already applied (or superseded): re-ack so a lost ack cannot
		// wedge the primary, but never re-apply (R2).
		r.stats.RepFenced++
		r.sendAck(src, m.Seq, true)
		return
	}
	var apply []byte
	if m.Del {
		apply = kvs.EncodeRequest(kvs.Request{Op: kvs.OpDelete, Key: m.Key})
	} else {
		apply = kvs.EncodeRequest(kvs.Request{Op: kvs.OpPut, Key: m.Key, Value: m.Value})
	}
	epoch, seq := m.Epoch, m.Seq
	key := m.Key
	r.store.ServeNetwork(apply, func(b []byte) {
		if r.halted {
			return
		}
		resp, err := kvs.DecodeResponse(b)
		// Deleting an absent key converges to the same state; only real
		// failures (IO error, unavailable) withhold the ack.
		ok := err == nil && (resp.Status == kvs.StatusOK || resp.Status == kvs.StatusNotFound)
		if ok {
			r.stats.Applies++
			if cur := r.wm[key]; epoch > cur.epoch || (epoch == cur.epoch && seq > cur.seq) {
				r.wm[key] = watermark{epoch: epoch, seq: seq}
			}
		}
		r.sendAck(src, seq, ok)
	})
}

func (r *Router) sendAck(to msg.DeviceID, seq uint64, ok bool) {
	r.cl.net.Send(r.cfg.id, to, r.epoch, &msg.ReplicateAck{
		Seq: seq, OK: ok, Epoch: r.epoch, Dead: r.deadList(),
	})
}

func (r *Router) onReplicateAck(src msg.DeviceID, m *msg.ReplicateAck) {
	r.noteDead("gossip", m.Dead...)
	t := r.inflight[m.Seq]
	if t == nil || !m.OK {
		return // stale ack, or a failed apply the retransmit timer retries
	}
	if t.acked == nil {
		t.acked = make(map[msg.DeviceID]bool)
	}
	t.acked[src] = true
	// The client is acked only when every CURRENT target acked: targets
	// are recomputed under the live view, so acks from since-dead (or
	// since-replaced) backups never complete a task on their own.
	for _, id := range r.repTargets(t.key) {
		if !t.acked[id] {
			return
		}
	}
	delete(r.inflight, m.Seq)
	r.ackTask(t)
}

// ackTask completes a task: client ack (writes only reach here with the
// mutation durable on every live owner) and pipeline advance.
func (r *Router) ackTask(t *writeTask) {
	if t.done {
		return
	}
	if t.reply != nil {
		resp := t.resp
		if resp == nil {
			resp = kvs.EncodeResponse(kvs.Response{Status: kvs.StatusOK})
		}
		t.reply(resp)
	}
	r.finishTask(t)
}

// finishTask retires a task without touching the client and starts the
// key's next queued mutation.
func (r *Router) finishTask(t *writeTask) {
	if t.done {
		return
	}
	t.done = true
	if t.tm != nil {
		t.tm.Stop()
	}
	delete(r.inflight, t.seq)
	if t.xfer && r.pendingRing != nil && t.xferVer == r.pendingVer {
		r.xferLeft--
		r.xferCheck()
	}
	g := r.gates[t.key]
	if g == nil || g.cur != t {
		return
	}
	if len(g.queue) == 0 {
		delete(r.gates, t.key)
		return
	}
	g.cur = g.queue[0]
	g.queue = g.queue[1:]
	r.startTask(g.cur)
}

// --- membership ---

// noteUnreachable is the network's transport-failure signal. Under
// decentralized membership the observer rules the peer dead and tells
// everyone; under a head node only the head's own observations count
// (it is the authority), and everyone else waits for its RingUpdate.
func (r *Router) noteUnreachable(dst msg.DeviceID) {
	if r.halted {
		return
	}
	if r.cfg.leases {
		// Directional suspicion: failing to reach dst proves only that
		// the forward path is broken — dst may be healthy and still
		// hearing us (asymmetric cut), or merely slow. Record the
		// suspicion; death is declared only once the INBOUND direction
		// confirms it (the silence sweep, at half the usual patience for
		// suspects). Without this, a one-way cut A→B made A declare B
		// dead even while B answered everyone. A peer we have NEVER
		// heard from is exempt: a connection refused during someone
		// else's boot is normal, not evidence.
		if _, heard := r.lastHeard[dst]; heard && !r.suspects[dst] {
			r.suspects[dst] = true
			r.stats.Suspicions++
		}
		return
	}
	if r.cfg.head != 0 && !r.isHead() {
		return
	}
	r.noteDead("unreachable", dst)
}

// noteDead merges machine deaths into the view; on change it bumps the
// epoch, fails pending ops aimed at the dead, re-replicates the shards
// this machine now leads, and (as detector or head) broadcasts the view.
func (r *Router) noteDead(why string, ids ...msg.DeviceID) {
	if r.halted {
		return
	}
	fresh := make([]msg.DeviceID, 0, len(ids))
	for _, id := range ids {
		if id != r.cfg.id && !r.dead[id] {
			r.dead[id] = true
			fresh = append(fresh, id)
		}
	}
	if len(fresh) == 0 {
		return
	}
	// prev is the view before this change: the dead set minus the
	// machines that just joined it.
	prev := make(map[msg.DeviceID]bool, len(r.dead))
	for id := range r.dead {
		prev[id] = true
	}
	for _, id := range fresh {
		delete(prev, id)
	}
	r.stats.ViewChanges++
	r.recalcEpoch()
	r.cl.tracef("m%d view epoch=%d dead=%v (%s)", r.cfg.id, r.epoch, r.deadList(), why)

	if r.cfg.leases {
		// Takeover fence: record the view this change replaced. Any key
		// whose primary differs between a recent-past view and now is
		// refused (typed, StatusFenced) until every lease the deposed
		// primary could possibly hold has lapsed — see keyFenced. Rings
		// are immutable after construction, so capturing the pointer is
		// a snapshot.
		r.views = append(r.views, viewSnap{until: r.eng.Now(), ring: r.ring, dead: prev})
	}

	r.failPendingTo(fresh)
	r.resyncAfter(prev)

	// Gossip radius: the machine that detected the death (or the head,
	// whose word is law) broadcasts; learners stay quiet so one death
	// costs one broadcast wave, not a storm. Silence-detected deaths
	// broadcast for the same reason transport-detected ones do: the
	// detector is the only machine that knows.
	if why == "unreachable" || why == "silence" || (r.isHead() && why != "ring.update") {
		r.broadcastView()
	}
}

// failPendingTo answers every pending op whose target just died:
// Unavailable now beats a client timeout later.
func (r *Router) failPendingTo(died []msg.DeviceID) {
	gone := make(map[msg.DeviceID]bool, len(died))
	for _, id := range died {
		gone[id] = true
	}
	var ids []uint64
	for id, p := range r.pending {
		if gone[p.target] {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := r.pending[id]
		delete(r.pending, id)
		if p.tm != nil {
			p.tm.Stop()
		}
		p.reply(kvs.EncodeResponse(kvs.Response{Status: kvs.StatusUnavailable}))
	}
}

// resyncAfter re-replicates every key whose ownership this view change
// handed to or re-based under this machine: promotion (the old primary
// died) and backup replacement both funnel through here, keeping R3 —
// every key reaches a full live replica set again.
func (r *Router) resyncAfter(prevDead map[msg.DeviceID]bool) {
	for _, key := range r.store.KeyList() {
		now := r.ring.Owners(key, r.dead, r.cfg.replicas)
		if len(now) == 0 || now[0] != r.cfg.id {
			continue
		}
		was := r.ring.Owners(key, prevDead, r.cfg.replicas)
		if ownersEqual(was, now) {
			continue
		}
		r.stats.Resyncs++
		r.enqueue(&writeTask{key: key, sync: true})
	}
}

func ownersEqual(a, b []msg.DeviceID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// broadcastView sends the dead set to every machine still in the view.
func (r *Router) broadcastView() {
	dead := r.deadList()
	for _, id := range r.cl.MachineIDs() {
		if id == r.cfg.id || r.dead[id] {
			continue
		}
		r.cl.net.Send(r.cfg.id, id, r.epoch, &msg.RingUpdate{Epoch: r.epoch, Dead: dead})
	}
}

// --- planned membership change (fleet reconciliation) ---
//
// A membership change is a two-phase protocol over ring versions:
//
//	prepare(v, members) — every live machine stages ring v. Each
//	  current primary re-replicates the keys whose owner set changes
//	  (the ring's minimal-movement property keeps this to the moved
//	  arc), and client mutations replicate to the UNION of current and
//	  staged owners for the duration. Routing stays on the current
//	  ring, so reads always land where the data already is. When a
//	  machine's transfer drains it reports transfer-done to the
//	  coordinator.
//	commit(v, members) — after every live participant reported, the
//	  coordinator broadcasts commit and all routers adopt ring v
//	  atomically (per machine). The commit broadcast happens inside
//	  one event, so a coordinator crash cannot split it.
//	abort(v) — any death during the transition aborts it (the level-
//	  triggered reconciler retries once failover settles); union
//	  replication has kept every acked write durable at both owner
//	  sets, so aborting loses nothing.
//
// Phases are idempotent: versions at or below the running ring are
// ignored, so duplicated or re-driven phases are harmless.

func (r *Router) applyRingConfig(src msg.DeviceID, m *msg.RingConfig) {
	if r.halted || m.Ver <= r.ringVer {
		return
	}
	switch m.Phase {
	case msg.RingPrepare:
		if len(m.Members) == 0 || (r.pendingRing != nil && m.Ver <= r.pendingVer) {
			return
		}
		joining := !r.InRing() && memberOf(m.Members, r.cfg.id)
		r.pendingVer = m.Ver
		r.pendingMembers = append([]msg.DeviceID(nil), m.Members...)
		r.pendingRing = NewRing(m.Members, r.cfg.vnodes)
		r.pendingFrom = src
		r.xferReported = false
		r.stats.RingStaged++
		r.cl.tracef("m%d ring stage v%d members=%v", r.cfg.id, m.Ver, m.Members)
		r.startXfer()
		if joining {
			// Joining: wipe whatever a previous ring stint left behind
			// before reporting transfer-done — a commit must never find
			// stale keys here. Keys this very transition is syncing over
			// are kept: a watermark at the ring version current NOW (pinned,
			// so a commit mid-sweep cannot reinterpret it) proves freshness.
			minVer := r.ringVer
			ver := m.Ver
			r.xferLeft++
			r.purgeKeys(r.store.KeyList(), func(key string) bool {
				w, ok := r.wm[key]
				return ok && w.epoch>>8 >= minVer
			}, func() {
				if r.pendingRing != nil && r.pendingVer == ver {
					r.xferLeft--
					r.xferCheck()
				}
			})
		}
		r.xferCheck()
	case msg.RingCommit:
		members := m.Members
		if len(members) == 0 && r.pendingRing != nil && m.Ver == r.pendingVer {
			members = r.pendingMembers
		}
		if len(members) == 0 {
			return
		}
		r.ring = NewRing(members, r.cfg.vnodes)
		r.ringVer = m.Ver
		r.clearPending()
		r.recalcEpoch()
		r.stats.RingCommits++
		r.cl.tracef("m%d ring commit v%d members=%v epoch=%d", r.cfg.id, m.Ver, members, r.epoch)
		r.purgeKeys(r.store.KeyList(), r.keepOwned, nil)
	case msg.RingAbort:
		if r.pendingRing == nil || m.Ver != r.pendingVer {
			return
		}
		r.clearPending()
		r.stats.RingAborts++
		r.cl.tracef("m%d ring abort v%d", r.cfg.id, m.Ver)
		r.purgeKeys(r.store.KeyList(), r.keepOwned, nil)
	}
}

func (r *Router) clearPending() {
	r.pendingRing = nil
	r.pendingVer = 0
	r.pendingMembers = nil
	r.pendingFrom = 0
	r.xferLeft = 0
	r.xferReported = false
}

// startXfer enqueues one sync task per local key whose owner set
// changes under the staged ring and this machine currently leads. The
// tasks ride the per-key gates, so they serialize behind (and carry
// the values of) any in-flight client writes.
func (r *Router) startXfer() {
	count := 0
	for _, key := range r.store.KeyList() {
		cur := r.owners(key)
		if len(cur) == 0 || cur[0] != r.cfg.id {
			continue
		}
		if ownersEqual(cur, r.pendingRing.Owners(key, r.dead, r.cfg.replicas)) {
			continue
		}
		count++
		r.stats.Xfers++
		r.enqueue(&writeTask{key: key, sync: true, xfer: true, xferVer: r.pendingVer})
	}
	r.xferLeft = count
}

// xferCheck reports this machine's transfer complete to the
// coordinator, exactly once per staged ring, when nothing is left.
func (r *Router) xferCheck() {
	if r.pendingRing == nil || r.xferLeft != 0 || r.xferReported {
		return
	}
	r.xferReported = true
	rep := r.Conditions()
	rep.TransferVer = r.pendingVer
	r.cl.tracef("m%d ring xfer done v%d", r.cfg.id, r.pendingVer)
	r.SendControl(r.pendingFrom, rep)
}

// onDrain executes a reconciler order. Upgrade is legal only out of
// the ring (flashing never races serving); an unknown mode is ignored.
func (r *Router) onDrain(m *msg.Drain) {
	switch m.Mode {
	case msg.DrainCordon:
		if !r.cordoned {
			r.cordoned = true
			r.stats.Cordons++
			r.cl.tracef("m%d cordoned", r.cfg.id)
		}
	case msg.DrainUncordon:
		r.cordoned = false
	case msg.DrainUpgrade:
		if r.InRing() || r.upgrading || r.confVer >= m.ConfigVersion {
			return
		}
		r.upgrading = true
		r.stats.Upgrades++
		v := m.ConfigVersion
		r.cl.tracef("m%d upgrading to conf v%d", r.cfg.id, v)
		r.eng.After(r.cfg.upgradeDelay, func() {
			if r.halted {
				return
			}
			r.confVer = v
			r.upgrading = false
			r.cl.tracef("m%d upgraded to conf v%d", r.cfg.id, v)
		})
	}
}

// keepOwned keeps a key after a ring adoption iff this machine still
// owns it (any replica slot) or a task for it is in flight. Purging
// strays matters for safety, not just space: a stale copy on a
// non-owner could be served as truth if later deaths promote the
// machine back into the key's owner set.
func (r *Router) keepOwned(key string) bool {
	if r.gates[key] != nil {
		return true
	}
	return memberOf(r.owners(key), r.cfg.id)
}

// purgeKeys deletes the listed keys from the local store, skipping
// those keep() wants, one at a time in sorted order — chained through
// the store's completion callbacks so the sweep cannot overrun the
// store queue bound. done (optional) fires when the sweep ends.
func (r *Router) purgeKeys(keys []string, keep func(string) bool, done func()) {
	if r.halted {
		return
	}
	for i, key := range keys {
		if keep(key) {
			continue
		}
		delete(r.wm, key)
		r.stats.Strays++
		rest := keys[i+1:]
		del := kvs.EncodeRequest(kvs.Request{Op: kvs.OpDelete, Key: key})
		r.store.ServeNetwork(del, func([]byte) {
			r.purgeKeys(rest, keep, done)
		})
		return
	}
	if done != nil {
		done()
	}
}

// --- head-node heartbeating ---

func (r *Router) armHeartbeat() {
	r.eng.After(r.cfg.hbEvery, func() {
		if r.halted {
			return
		}
		r.hbSeq++
		r.cl.net.Send(r.cfg.id, r.cfg.head, r.epoch, &msg.Heartbeat{Seq: r.hbSeq})
		r.armHeartbeat()
	})
}

// armSweep runs the head's staleness sweep: a machine whose heartbeat
// is older than failAfter is declared dead and the view broadcast.
func (r *Router) armSweep() {
	r.eng.After(r.cfg.failAfter/2, func() {
		if r.halted {
			return
		}
		now := r.eng.Now()
		var stale []msg.DeviceID
		for _, id := range r.cl.MachineIDs() {
			if id == r.cfg.id || r.dead[id] {
				continue
			}
			last, beaten := r.lastBeat[id]
			if beaten && now.Sub(last) > r.cfg.failAfter {
				stale = append(stale, id)
			}
		}
		if len(stale) > 0 {
			r.noteDead("heartbeat", stale...)
		}
		r.armSweep()
	})
}

// --- epoch leases (Config.Leases) ---
//
// The split-brain defense. A machine serves as primary (or acts as the
// reconcile actor) only while holding a lease countersigned by a quorum
// — a majority of the full ring membership, counting itself — within
// the last leaseDur of virtual time. Two disjoint majorities cannot
// exist, so two machines cannot hold live leases under contradictory
// membership views: the side of a partition that cannot assemble a
// quorum loses its lease within leaseDur and refuses every client op
// with StatusFenced. Renewal runs every leaseRenew; since grantors stop
// countersigning the moment their view declares the holder dead (and
// dead sets never shrink), a deposed primary's authority dies no later
// than leaseDur after its last quorum.

// leaseQuorum is a majority of the full ring membership. The membership
// (not the live view) is the electorate: a machine that declares
// everyone else dead must still find itself short of quorum.
func (r *Router) leaseQuorum() int { return len(r.ring.Machines())/2 + 1 }

// leaseValid reports whether this machine currently holds a
// quorum-countersigned lease. With leases disabled it is always true —
// the gate compiles away and every earlier experiment is untouched.
func (r *Router) leaseValid() bool {
	if !r.cfg.leases {
		return true
	}
	return r.InRing() && r.eng.Now() < r.leaseUntil
}

// LeaseValid is the exported lease probe; internal/reconcile fences the
// actor role on it and E21's split-brain audit samples it.
func (r *Router) LeaseValid() bool { return r.leaseValid() }

// viewSnap is one entry of the takeover-fence history: the membership
// view (ring + dead set) that was in effect strictly before `until`.
type viewSnap struct {
	until sim.Time
	ring  *Ring
	dead  map[msg.DeviceID]bool
}

// keyFenced reports whether key sits behind a still-live takeover
// fence: the view in effect leaseDur+failAfter ago named a different
// primary, and that primary may still hold a lease granted under it
// (one gossip round for its last grantor to learn of the death, ≤
// failAfter, plus the lease itself). The check consults the view
// history rather than a per-key map so that keys promoted WITHOUT a
// local replica are fenced too. Dead sets only grow, so a machine that
// was primary for a key at the window's start stays primary through
// now — checking the single view at the cutoff covers the whole window.
func (r *Router) keyFenced(key string) bool {
	cutoff := r.eng.Now().Add(-(r.cfg.leaseDur + r.cfg.failAfter))
	// Views replaced at or before the cutoff can never fence again (the
	// cutoff only advances); drop them.
	for len(r.views) > 0 && r.views[0].until <= cutoff {
		r.views = r.views[1:]
	}
	if len(r.views) == 0 {
		return false
	}
	v := r.views[0] // the view in effect at the cutoff instant
	was := v.ring.Owners(key, v.dead, r.cfg.replicas)
	return len(was) > 0 && was[0] != r.cfg.id
}

// KeyFenced is the exported takeover-fence probe (E21 split-brain audit).
func (r *Router) KeyFenced(key string) bool {
	if !r.cfg.leases {
		return false
	}
	return r.keyFenced(key)
}

// PrimaryFor reports whether this router's own membership view routes
// key to itself as primary. Together with LeaseValid and KeyFenced it
// is the "would I serve this key right now" probe: E21 counts, at every
// sample instant, how many machines answer yes for the same key — more
// than one is a split brain.
func (r *Router) PrimaryFor(key string) bool {
	own := r.owners(key)
	return len(own) > 0 && own[0] == r.cfg.id
}

// Suspects returns the directionally-suspected peers (sorted; test and
// diagnostic use).
func (r *Router) Suspects() []msg.DeviceID {
	out := make([]msg.DeviceID, 0, len(r.suspects))
	for id := range r.suspects {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (r *Router) armLease() {
	r.eng.After(r.cfg.leaseRenew, func() {
		if r.halted {
			return
		}
		r.renewLease()
		r.armLease()
	})
}

// renewLease starts one countersigning round: a fresh Seq, a self-grant,
// and a LeaseRenew to every ring member this view holds alive. Stale
// grants (older Seq) are ignored, so a slow round can never resurrect an
// expired lease with old signatures.
func (r *Router) renewLease() {
	if !r.InRing() {
		return
	}
	if r.eng.Now() >= r.leaseUntil {
		r.stats.LeaseLapses++
	}
	r.leaseSeq++
	r.stats.LeaseRenews++
	r.leaseRound = map[msg.DeviceID]bool{r.cfg.id: true}
	until := r.eng.Now().Add(r.cfg.leaseDur)
	if len(r.leaseRound) >= r.leaseQuorum() {
		// Single-member ring: the self-grant is the quorum.
		r.extendLease(until)
		return
	}
	renew := &msg.LeaseRenew{Seq: r.leaseSeq, Until: uint64(until)}
	for _, id := range r.ring.Machines() {
		if id == r.cfg.id || r.dead[id] {
			continue
		}
		r.cl.net.Send(r.cfg.id, id, r.epoch, renew)
	}
}

func (r *Router) extendLease(until sim.Time) {
	if until > r.leaseUntil {
		r.leaseUntil = until
	}
}

// onLeaseRenew countersigns a renewal round. Frames from machines this
// view holds dead never reach here (onFrame answers those with a typed
// LeaseRevoke), so reaching this handler IS the grant decision.
func (r *Router) onLeaseRenew(src msg.DeviceID, m *msg.LeaseRenew) {
	r.stats.LeaseGrants++
	r.cl.net.Send(r.cfg.id, src, r.epoch, &msg.LeaseGrant{Seq: m.Seq, Until: m.Until})
}

func (r *Router) onLeaseGrant(src msg.DeviceID, m *msg.LeaseGrant) {
	if m.Seq != r.leaseSeq || r.leaseRound == nil {
		return // a stale round's signature proves nothing about now
	}
	r.leaseRound[src] = true
	if len(r.leaseRound) >= r.leaseQuorum() {
		r.extendLease(sim.Time(m.Until))
	}
}

// armSilence runs the decentralized inbound-silence failure detector.
// The lease renewal chatter guarantees every pair of ring members
// periodic traffic, so "I have heard nothing from p for failAfter" is
// meaningful evidence — and unlike a transport-level send failure it
// measures the direction that matters for death: whether p can still
// reach us. Directionally-suspected peers (we failed to reach them) get
// half the patience: two independent signals, outbound failure plus
// inbound silence, converge on a declaration sooner than either alone.
func (r *Router) armSilence() {
	r.eng.After(r.cfg.failAfter/2, func() {
		if r.halted {
			return
		}
		if r.InRing() {
			now := r.eng.Now()
			var silent []msg.DeviceID
			for _, id := range r.ring.Machines() {
				if id == r.cfg.id || r.dead[id] {
					continue
				}
				last, heard := r.lastHeard[id]
				if !heard {
					// A peer that has never spoken to us cannot be judged
					// silent: during a staggered boot it is indistinguishable
					// from a machine still coming up, and declaring it dead
					// here is exactly the false positive that cascades (the
					// boot window grows with N, so any fixed grace loses).
					// Once it speaks, the renewal chatter keeps every pair's
					// clock fresh within microseconds — and a booted machine
					// that dies IS heard-from by its neighbors first, whose
					// silence verdict then reaches us as view gossip.
					continue
				}
				patience := r.cfg.failAfter
				if r.suspects[id] {
					patience /= 2
				}
				if now.Sub(last) > patience {
					silent = append(silent, id)
				}
			}
			if len(silent) > 0 {
				r.stats.SilenceDeaths += uint64(len(silent))
				r.noteDead("silence", silent...)
			} else if len(r.dead) > 0 {
				// Level-triggered view gossip: re-broadcast the dead set
				// each sweep so machines the original wave could not reach
				// (one-way cuts) still converge, which bounds how long a
				// deposed primary keeps finding willing grantors.
				r.broadcastView()
			}
		}
		r.armSilence()
	})
}
