package fabric

import (
	"nocpu/internal/chaos"
	"nocpu/internal/sim"
)

// Ledger is the fabric's recovery oracle: the chaos ledger's write/read
// bookkeeping (R1 no-acked-write-lost maps to G1, R2 no-dup-apply to
// G2) extended with R3 — after failover settles, every key the workload
// ever touched must get a definitive answer (OK or NotFound) from some
// live machine. A key whose final sweep read never resolves is
// unroutable: its shard fell out of the ring without a surviving
// replica taking it over.
type Ledger struct {
	*chaos.Ledger
	unroutable []string
}

// NewLedger returns an empty fabric ledger.
func NewLedger() *Ledger { return &Ledger{Ledger: chaos.NewLedger()} }

// NoteUnroutable records a key whose read-back sweep got no definitive
// answer from the fabric (R3 violation).
func (l *Ledger) NoteUnroutable(key string) {
	const maxTracked = 64
	if len(l.unroutable) < maxTracked {
		l.unroutable = append(l.unroutable, key)
	}
}

// Report is the chaos report plus the R3 verdict.
type Report struct {
	chaos.Report
	Unroutable []string
}

// Report tallies the run.
func (l *Ledger) Report() Report {
	return Report{Report: l.Ledger.Report(), Unroutable: append([]string(nil), l.unroutable...)}
}

// CleanFabric reports whether the run upheld R1, R2 (via G1/G2), R3,
// and — when bound > 0 — recovered from every kill within bound.
func (r Report) CleanFabric(bound sim.Duration) bool {
	return r.Report.Clean(bound) && len(r.Unroutable) == 0
}
