package fabric

import (
	"nocpu/internal/faultinject"
	"nocpu/internal/msg"
	"nocpu/internal/sim"
)

// frameMagic prefixes every fabric frame delivered to a router's NIC.
// Client kvs requests start with an opcode in 1..3, so one byte
// discriminates "peer machine traffic" from "client traffic" at the
// router's ServeNetwork edge.
const frameMagic = 0xFB

// Datacenter-network defaults: a few microseconds of switch+propagation
// latency plus a per-byte serialization cost (~10 Gb/s).
const (
	DefaultLinkLatency = 2 * sim.Microsecond
	DefaultPerByte     = 1 * sim.Nanosecond
)

// NetConfig parameterizes the modeled datacenter network.
type NetConfig struct {
	LinkLatency sim.Duration // per-frame base latency (default 2µs)
	PerByte     sim.Duration // serialization cost per frame byte (default 1ns)
	// Plane, when non-nil, injects link faults (drop/delay/dup/reorder)
	// on LayerLink; whole-machine crashes are the cluster's job.
	Plane *faultinject.Plane
}

// NetStats counts fabric traffic.
type NetStats struct {
	Frames      uint64
	Bytes       uint64
	Vanished    uint64 // frames addressed to (or arriving at) a dead machine
	Unreachable uint64 // sender notifications for dead destinations
}

// Network is the full-mesh datacenter fabric between machines. It
// carries msg.Envelope frames whose Src/Dst are machine addresses, and
// it models transport-level failure detection: a send to a machine the
// cluster has killed costs a round trip, then surfaces as an
// "unreachable" notification at the sending router (the analogue of an
// ARP/SYN timeout). Frames in flight to a machine that dies before
// delivery vanish silently, exactly like a real wire.
type Network struct {
	eng *sim.Engine
	cfg NetConfig

	// alive/deliver/unreachable/trace are wired by the Cluster.
	alive       func(msg.DeviceID) bool
	deliver     func(dst msg.DeviceID, frame []byte)
	unreachable func(src, dst msg.DeviceID)
	trace       func(format string, args ...any)

	// linkSeq tags frames per (src, dst) so receivers can suppress
	// plane-injected duplicates with a msg.DedupWindow: per-directed-link
	// counters keep tags dense, which the 64-deep window needs.
	linkSeq map[[2]msg.DeviceID]uint32

	stats NetStats
}

func newNetwork(eng *sim.Engine, cfg NetConfig) *Network {
	if cfg.LinkLatency == 0 {
		cfg.LinkLatency = DefaultLinkLatency
	}
	if cfg.PerByte == 0 {
		cfg.PerByte = DefaultPerByte
	}
	return &Network{eng: eng, cfg: cfg, linkSeq: make(map[[2]msg.DeviceID]uint32)}
}

// Stats returns a copy of the traffic counters.
func (n *Network) Stats() NetStats { return n.stats }

// Send puts one message on the wire from machine src to machine dst.
// epoch is stamped into the envelope's incarnation field (trace and
// diagnostics only; fencing is the routers' dead-set business).
func (n *Network) Send(src, dst msg.DeviceID, epoch uint32, m msg.Message) {
	if !n.alive(dst) {
		// Transport-level failure detection: the connection attempt burns
		// a round trip, then the sender learns the peer is gone.
		n.stats.Unreachable++
		n.eng.After(2*n.cfg.LinkLatency, func() { n.unreachable(src, dst) })
		return
	}
	link := [2]msg.DeviceID{src, dst}
	n.linkSeq[link]++
	env := msg.Envelope{Src: src, Dst: dst, Seq: n.linkSeq[link], Inc: epoch, Msg: m}
	frame := append([]byte{frameMagic}, env.Encode()...)

	lat := n.cfg.LinkLatency + sim.Duration(len(frame))*n.cfg.PerByte
	copies := 1
	if d := n.cfg.Plane.Filter(faultinject.LayerLink, n.eng.Now(), src, dst, m.Kind()); d.Op != faultinject.Pass {
		switch d.Op {
		case faultinject.Drop:
			return
		case faultinject.Delay, faultinject.Reorder:
			lat += d.Delay
		case faultinject.Dup:
			copies = 2
		case faultinject.Slow:
			// Fail-slow: the link (or the machine behind it) is alive but
			// degraded — everything arrives, multiplied, not dropped.
			if d.Factor > 1 {
				lat = sim.Duration(float64(lat) * d.Factor)
			}
		}
	}
	n.stats.Frames += uint64(copies)
	n.stats.Bytes += uint64(len(frame) * copies)
	// Every wire event lands in the trace: the golden determinism test
	// hashes the full message schedule, not just lifecycle milestones.
	n.trace("net %d->%d kind=%d seq=%d len=%d", src, dst, m.Kind(), n.linkSeq[link], len(frame))
	for c := 0; c < copies; c++ {
		// The duplicate trails the original by one serialization slot; it
		// carries the same link seq, so the receiver's window eats it.
		n.eng.After(lat+sim.Duration(c)*n.cfg.PerByte, func() {
			if !n.alive(dst) {
				n.stats.Vanished++
				return
			}
			n.deliver(dst, frame)
		})
	}
}
