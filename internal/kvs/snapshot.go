package kvs

import (
	"encoding/binary"
	"fmt"
)

// Index snapshots: §4 recovery rebuilds the index by scanning the whole
// log (E5 shows that scan growing linearly). A snapshot persists the
// index plus the log watermark it covers, so recovery becomes
// read-snapshot + scan-suffix. Snapshots live in their own file on the
// smart SSD ("<data file>.snap", created on demand via file+create).
//
// Torn-snapshot safety: the header's byte count and trailing magic must
// both validate; anything off falls back to a full log scan, which is
// always correct (the snapshot is a pure accelerator).

const (
	snapMagic  = 0x534e4150 // "SNAP"
	snapFooter = 0x50414e53 // reversed, written last
)

// encodeSnapshot serializes the index at the given watermark.
func encodeSnapshot(index map[string]loc, watermark uint64) []byte {
	// Deterministic order is not required for correctness (the index is a
	// set), but keeps runs reproducible byte-for-byte.
	keys := make([]string, 0, len(index))
	for k := range index {
		keys = append(keys, k)
	}
	sortStrings(keys)
	size := 20
	for _, k := range keys {
		size += 2 + len(k) + 12
	}
	size += 4 // footer
	b := make([]byte, 0, size)
	var tmp [12]byte
	binary.LittleEndian.PutUint32(tmp[:4], snapMagic)
	b = append(b, tmp[:4]...)
	binary.LittleEndian.PutUint64(tmp[:8], watermark)
	b = append(b, tmp[:8]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(keys)))
	b = append(b, tmp[:4]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(size))
	b = append(b, tmp[:4]...)
	for _, k := range keys {
		l := index[k]
		binary.LittleEndian.PutUint16(tmp[:2], uint16(len(k)))
		b = append(b, tmp[:2]...)
		b = append(b, k...)
		binary.LittleEndian.PutUint64(tmp[:8], l.off)
		b = append(b, tmp[:8]...)
		binary.LittleEndian.PutUint32(tmp[:4], l.n)
		b = append(b, tmp[:4]...)
	}
	binary.LittleEndian.PutUint32(tmp[:4], snapFooter)
	b = append(b, tmp[:4]...)
	return b
}

// decodeSnapshot validates and parses; any inconsistency returns an
// error (caller falls back to a full scan).
func decodeSnapshot(b []byte) (map[string]loc, uint64, error) {
	if len(b) < 24 {
		return nil, 0, fmt.Errorf("kvs: snapshot too short")
	}
	if binary.LittleEndian.Uint32(b[0:]) != snapMagic {
		return nil, 0, fmt.Errorf("kvs: bad snapshot magic")
	}
	watermark := binary.LittleEndian.Uint64(b[4:])
	count := int(binary.LittleEndian.Uint32(b[12:]))
	total := int(binary.LittleEndian.Uint32(b[16:]))
	if total != len(b) {
		return nil, 0, fmt.Errorf("kvs: snapshot length %d != declared %d (torn write)", len(b), total)
	}
	if binary.LittleEndian.Uint32(b[len(b)-4:]) != snapFooter {
		return nil, 0, fmt.Errorf("kvs: snapshot footer missing (torn write)")
	}
	idx := make(map[string]loc, count)
	off := 20
	for i := 0; i < count; i++ {
		if off+2 > len(b)-4 {
			return nil, 0, fmt.Errorf("kvs: snapshot truncated at entry %d", i)
		}
		kl := int(binary.LittleEndian.Uint16(b[off:]))
		off += 2
		if off+kl+12 > len(b)-4 {
			return nil, 0, fmt.Errorf("kvs: snapshot truncated in entry %d", i)
		}
		key := string(b[off : off+kl])
		off += kl
		l := loc{
			off: binary.LittleEndian.Uint64(b[off:]),
			n:   binary.LittleEndian.Uint32(b[off+8:]),
		}
		off += 12
		idx[key] = l
	}
	if off != len(b)-4 {
		return nil, 0, fmt.Errorf("kvs: %d trailing snapshot bytes", len(b)-4-off)
	}
	return idx, watermark, nil
}

// sortStrings is an insertion-free stdlib-only sort (small helper to keep
// imports lean).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Snapshot persists the current index to the snapshot file. The store
// must be ready and configured with a SnapshotFile. cb reports
// completion; ops may continue during the write (the watermark pins what
// the snapshot covers).
func (s *Store) Snapshot(cb func(error)) {
	if !s.ready || s.snap == nil {
		cb(fmt.Errorf("kvs: snapshot unavailable"))
		return
	}
	blob := encodeSnapshot(s.index, s.fileEnd)
	s.snap.Truncate(func(err error) {
		if err != nil {
			cb(err)
			return
		}
		s.writeSnapChunks(blob, 0, cb)
	})
}

func (s *Store) writeSnapChunks(blob []byte, off int, cb func(error)) {
	if off >= len(blob) {
		s.stats.Snapshots++
		cb(nil)
		return
	}
	n := s.snap.MaxIO()
	if off+n > len(blob) {
		n = len(blob) - off
	}
	s.snap.Write(uint64(off), blob[off:off+n], func(err error) {
		if err != nil {
			cb(err)
			return
		}
		s.writeSnapChunks(blob, off+n, cb)
	})
}

// loadSnapshot tries to seed the index from the snapshot file; returns
// the scan start (watermark) or 0 for a full scan.
func (s *Store) loadSnapshot(cb func(start uint64)) {
	if s.snap == nil {
		cb(0)
		return
	}
	s.snap.Stat(func(size uint64, err error) {
		if err != nil || size == 0 {
			cb(0)
			return
		}
		s.readSnapChunks(make([]byte, 0, size), 0, size, func(blob []byte, err error) {
			if err != nil {
				cb(0)
				return
			}
			idx, watermark, derr := decodeSnapshot(blob)
			if derr != nil {
				// Torn or stale-format snapshot: full scan.
				cb(0)
				return
			}
			s.index = idx
			s.stats.SnapshotRestores++
			cb(watermark)
		})
	})
}

func (s *Store) readSnapChunks(acc []byte, off, size uint64, cb func([]byte, error)) {
	if off >= size {
		cb(acc, nil)
		return
	}
	n := s.snap.MaxIO()
	if rem := size - off; uint64(n) > rem {
		n = int(rem)
	}
	s.snap.Read(off, n, func(b []byte, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		s.readSnapChunks(append(acc, b...), off+uint64(len(b)), size, cb)
	})
}
