// Package kvs implements the paper's §3 application: a key-value store
// whose operations execute on the smart NIC while the data lives in a
// file on the smart SSD. No CPU participates — the NIC keeps the index in
// its local memory and reaches values over the shared-memory virtqueue.
//
// The store is log-structured: every put/delete appends a record to the
// data file (which doubles as the write-ahead log), and the index maps
// keys to value locations. Recovery after an SSD reset is a sequential
// scan of the file (§4's error-handling story, exercised by E5).
package kvs

import (
	"encoding/binary"
	"fmt"
)

// Op is a client request opcode.
type Op uint8

// Client operations.
const (
	OpGet Op = iota + 1
	OpPut
	OpDelete
)

func (o Op) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Status is a response code.
type Status uint8

// Response statuses.
const (
	StatusOK Status = iota
	StatusNotFound
	StatusError
	StatusUnavailable // store not (yet) connected to its file
	StatusShed        // admission control refused: deadline unmeetable
	// StatusDenied is a tenancy refusal: the requesting tenant may not
	// touch the key it named. Always typed — a cross-tenant probe gets
	// this status, never a silent drop and never NotFound (which would
	// leak key existence across the boundary).
	StatusDenied
	// StatusFenced is a lease refusal: the machine asked to serve as
	// primary does not (or does not yet) hold a quorum-countersigned
	// epoch lease for the moment of the request — it might be the old
	// primary on the wrong side of a partition, or the new primary
	// still inside the takeover fence that waits out the old lease.
	// Always typed: a fenced primary refuses loudly so a client retries
	// elsewhere, instead of silently serving a divergent history.
	StatusFenced
)

// Request is a decoded client request.
//
// Deadline, when nonzero, is the absolute virtual time (nanoseconds) by
// which the client needs the response; the store sheds requests it
// cannot serve in time (StatusShed) instead of working on already-dead
// ones. It is a trailing optional wire field — encoded only when
// nonzero — so deadline-free requests are byte-identical to the
// pre-deadline format and old encodings still decode (Deadline 0).
//
// Tenant, when nonzero, is the requesting isolation domain. The NIC
// edge stamps it (smartnic.DeliverFrom) — the store overwrites whatever
// a client wrote here, so the field is an authenticated transit stamp,
// not a client claim; it exists on the wire so the fabric router can
// carry the stamp across machine hops. A second trailing optional: when
// Tenant is present Deadline is encoded too (even if zero), keeping the
// two distinguishable by remaining length, and all tenant-free requests
// stay byte-identical to the pre-tenancy format.
type Request struct {
	Op       Op
	Key      string
	Value    []byte
	Deadline uint64
	Tenant   uint32
}

// Response is a decoded store response.
type Response struct {
	Status Status
	Value  []byte
}

// EncodeRequest serializes: op u8 | keyLen u16 | key | valLen u32 | val
// [| deadline u64 when nonzero or tenant present [| tenant u32 when
// nonzero]].
func EncodeRequest(r Request) []byte {
	n := 7 + len(r.Key) + len(r.Value)
	if r.Deadline != 0 || r.Tenant != 0 {
		n += 8
	}
	if r.Tenant != 0 {
		n += 4
	}
	b := make([]byte, n)
	b[0] = byte(r.Op)
	binary.LittleEndian.PutUint16(b[1:], uint16(len(r.Key)))
	copy(b[3:], r.Key)
	off := 3 + len(r.Key)
	binary.LittleEndian.PutUint32(b[off:], uint32(len(r.Value)))
	copy(b[off+4:], r.Value)
	tail := off + 4 + len(r.Value)
	if r.Deadline != 0 || r.Tenant != 0 {
		binary.LittleEndian.PutUint64(b[tail:], r.Deadline)
	}
	if r.Tenant != 0 {
		binary.LittleEndian.PutUint32(b[tail+8:], r.Tenant)
	}
	return b
}

// DecodeRequest parses a client request.
func DecodeRequest(b []byte) (Request, error) {
	if len(b) < 7 {
		return Request{}, fmt.Errorf("kvs: short request")
	}
	kl := int(binary.LittleEndian.Uint16(b[1:]))
	if len(b) < 3+kl+4 {
		return Request{}, fmt.Errorf("kvs: truncated key")
	}
	vl := int(binary.LittleEndian.Uint32(b[3+kl:]))
	if len(b) < 7+kl+vl {
		return Request{}, fmt.Errorf("kvs: truncated value")
	}
	r := Request{Op: Op(b[0]), Key: string(b[3 : 3+kl])}
	if vl > 0 {
		r.Value = append([]byte(nil), b[7+kl:7+kl+vl]...)
	}
	if len(b) >= 7+kl+vl+8 {
		r.Deadline = binary.LittleEndian.Uint64(b[7+kl+vl:])
	}
	if len(b) >= 7+kl+vl+12 {
		r.Tenant = binary.LittleEndian.Uint32(b[7+kl+vl+8:])
	}
	return r, nil
}

// EncodeResponse serializes: status u8 | valLen u32 | val.
func EncodeResponse(r Response) []byte {
	b := make([]byte, 5+len(r.Value))
	b[0] = byte(r.Status)
	binary.LittleEndian.PutUint32(b[1:], uint32(len(r.Value)))
	copy(b[5:], r.Value)
	return b
}

// DecodeResponse parses a store response.
func DecodeResponse(b []byte) (Response, error) {
	if len(b) < 5 {
		return Response{}, fmt.Errorf("kvs: short response")
	}
	vl := int(binary.LittleEndian.Uint32(b[1:]))
	if len(b) < 5+vl {
		return Response{}, fmt.Errorf("kvs: truncated response value")
	}
	r := Response{Status: Status(b[0])}
	if vl > 0 {
		r.Value = append([]byte(nil), b[5:5+vl]...)
	}
	return r, nil
}

// Log-record framing within the data file:
// keyLen u16 | valLen u32 | key | value. valLen == tombstone marks a
// delete.
const tombstone = uint32(0xFFFFFFFF)

// recordHeader is the fixed framing overhead.
const recordHeader = 6

// encodeRecord frames one log record.
func encodeRecord(key string, value []byte, del bool) []byte {
	vl := uint32(len(value))
	if del {
		vl = tombstone
	}
	b := make([]byte, recordHeader+len(key)+len(value))
	binary.LittleEndian.PutUint16(b[0:], uint16(len(key)))
	binary.LittleEndian.PutUint32(b[2:], vl)
	copy(b[recordHeader:], key)
	copy(b[recordHeader+len(key):], value)
	return b
}

// recordMeta describes a parsed record header.
type recordMeta struct {
	keyLen int
	valLen int
	del    bool
}

func parseRecordHeader(b []byte) (recordMeta, bool) {
	if len(b) < recordHeader {
		return recordMeta{}, false
	}
	kl := int(binary.LittleEndian.Uint16(b[0:]))
	vlRaw := binary.LittleEndian.Uint32(b[2:])
	m := recordMeta{keyLen: kl}
	if vlRaw == tombstone {
		m.del = true
	} else {
		m.valLen = int(vlRaw)
	}
	return m, true
}

// totalLen returns the full record length.
func (m recordMeta) totalLen() int { return recordHeader + m.keyLen + m.valLen }
