package kvs

import (
	"fmt"
	"testing"

	"nocpu/internal/smartssd"
)

func TestCompactShrinksLogAndPreservesData(t *testing.T) {
	tb := newTestbed(t, 0)
	// Churn: write each key 5 times, delete a third of them.
	const keys = 30
	for round := 0; round < 5; round++ {
		for i := 0; i < keys; i++ {
			tb.op(t, Request{Op: OpPut, Key: fmt.Sprintf("k%02d", i),
				Value: []byte(fmt.Sprintf("v%02d-r%d", i, round))})
		}
	}
	for i := 0; i < keys; i += 3 {
		tb.op(t, Request{Op: OpDelete, Key: fmt.Sprintf("k%02d", i)})
	}
	f, _ := tb.ssd.FS().Lookup("kv.dat")
	sizeBefore := f.Size()

	done := false
	var cerr error
	tb.store.Compact(func(err error) { cerr, done = err, true })
	tb.run()
	if !done || cerr != nil {
		t.Fatalf("compact: done=%v err=%v", done, cerr)
	}
	if tb.store.Stats().Compactions != 1 {
		t.Fatal("compaction not counted")
	}
	f2, ok := tb.ssd.FS().Lookup("kv.dat")
	if !ok {
		t.Fatal("data file gone after compaction")
	}
	if f2.Size() >= sizeBefore/3 {
		t.Fatalf("log not compacted: %d -> %d", sizeBefore, f2.Size())
	}
	// All live keys intact with their final values; deleted keys stay
	// deleted.
	for i := 0; i < keys; i++ {
		r := tb.op(t, Request{Op: OpGet, Key: fmt.Sprintf("k%02d", i)})
		if i%3 == 0 {
			if r.Status != StatusNotFound {
				t.Fatalf("deleted k%02d resurrected: %+v", i, r)
			}
			continue
		}
		if r.Status != StatusOK || string(r.Value) != fmt.Sprintf("v%02d-r4", i) {
			t.Fatalf("k%02d after compact: %+v (%q)", i, r, r.Value)
		}
	}
	// Writes work again post-compaction.
	if r := tb.op(t, Request{Op: OpPut, Key: "fresh", Value: []byte("new")}); r.Status != StatusOK {
		t.Fatalf("post-compact put: %+v", r)
	}
	if r := tb.op(t, Request{Op: OpGet, Key: "fresh"}); string(r.Value) != "new" {
		t.Fatalf("post-compact get: %+v", r)
	}
}

func TestRecoveryFromCompactedLog(t *testing.T) {
	tb := newTestbed(t, 0)
	for i := 0; i < 20; i++ {
		tb.op(t, Request{Op: OpPut, Key: fmt.Sprintf("k%02d", i), Value: []byte("x")})
		tb.op(t, Request{Op: OpPut, Key: fmt.Sprintf("k%02d", i), Value: []byte(fmt.Sprintf("final%02d", i))})
	}
	done := false
	tb.store.Compact(func(err error) {
		if err != nil {
			t.Errorf("compact: %v", err)
		}
		done = true
	})
	tb.run()
	if !done {
		t.Fatal("compact incomplete")
	}
	// Post-compact writes append past the compacted prefix.
	tb.op(t, Request{Op: OpPut, Key: "tail", Value: []byte("record")})

	// A fresh store recovers the exact state by scanning the compacted
	// log.
	st2 := New(Config{App: 40, FileName: "kv.dat", Memctrl: mcID, QueueEntries: 64})
	booted := false
	var bootErr error
	st2.OnReady = func(err error) { bootErr, booted = err, true }
	tb.nic.AddApp(st2)
	tb.run()
	if !booted || bootErr != nil {
		t.Fatalf("recovery: %v", bootErr)
	}
	if st2.Keys() != 21 {
		t.Fatalf("recovered keys = %d, want 21", st2.Keys())
	}
	// 20 compacted + 1 tail record: exactly 21 records scanned.
	if recs := st2.Stats().RecoveredRecords; recs != 21 {
		t.Fatalf("records scanned = %d, want 21", recs)
	}
}

func TestWritesRefusedDuringCompaction(t *testing.T) {
	tb := newTestbed(t, 0)
	for i := 0; i < 50; i++ {
		tb.op(t, Request{Op: OpPut, Key: fmt.Sprintf("k%02d", i), Value: make([]byte, 400)})
	}
	compDone := false
	tb.store.Compact(func(err error) {
		if err != nil {
			t.Errorf("compact: %v", err)
		}
		compDone = true
	})
	// Issue a put immediately (compaction is still streaming: no engine
	// run since Compact).
	var putResp Response
	putGot := false
	tb.nic.Deliver(10, EncodeRequest(Request{Op: OpPut, Key: "during", Value: []byte("x")}), func(b []byte) {
		putResp, _ = DecodeResponse(b)
		putGot = true
	})
	// And a get, which must succeed from the old file.
	var getResp Response
	getGot := false
	tb.nic.Deliver(10, EncodeRequest(Request{Op: OpGet, Key: "k05"}), func(b []byte) {
		getResp, _ = DecodeResponse(b)
		getGot = true
	})
	tb.run()
	if !compDone || !putGot || !getGot {
		t.Fatalf("flow incomplete: comp=%v put=%v get=%v", compDone, putGot, getGot)
	}
	if putResp.Status != StatusUnavailable {
		t.Fatalf("put during compaction: %+v", putResp)
	}
	if getResp.Status != StatusOK || len(getResp.Value) != 400 {
		t.Fatalf("get during compaction: %+v", getResp)
	}
}

func TestCompactGuards(t *testing.T) {
	tb := newTestbed(t, 0)
	errs := 0
	tb.store.Compact(func(err error) {
		if err != nil {
			errs++
		}
	})
	// Double compact while the first runs.
	tb.store.Compact(func(err error) {
		if err != nil {
			errs++
		}
	})
	tb.run()
	if errs != 1 {
		t.Fatalf("concurrent-compact guard: errs=%d, want 1", errs)
	}
}

func TestFSRenameOver(t *testing.T) {
	tb := newTestbed(t, 0)
	fs := tb.ssd.FS()
	var a, b *smartssd.File
	fs.Create("a", func(f *smartssd.File, err error) { a = f })
	fs.Create("b", func(f *smartssd.File, err error) { b = f })
	tb.run()
	wrote := false
	a.WriteAt(0, []byte("contents-of-a"), func(err error) { wrote = err == nil })
	tb.run()
	if !wrote {
		t.Fatal("write failed")
	}
	renamed := false
	a.Rename("b", func(err error) {
		if err != nil {
			t.Errorf("rename: %v", err)
		}
		renamed = true
	})
	tb.run()
	if !renamed {
		t.Fatal("rename incomplete")
	}
	_ = b
	// Only one "b" remains, with a's contents; "a" is gone.
	if _, ok := fs.Lookup("a"); ok {
		t.Fatal("old name survives")
	}
	nb, ok := fs.Lookup("b")
	if !ok || nb.Size() != 13 {
		t.Fatalf("rename-over target wrong (ok=%v)", ok)
	}
	if len(fs.List()) != 2 { // kv.dat + b
		t.Fatalf("directory = %v", fs.List())
	}
}
