package kvs

import (
	"bytes"
	"fmt"
	"testing"

	"nocpu/internal/msg"
	"nocpu/internal/sim"
)

func TestValueCacheLRU(t *testing.T) {
	c := newValueCache(2)
	c.put("a", []byte{1})
	c.put("b", []byte{2})
	if v, ok := c.get("a"); !ok || v[0] != 1 {
		t.Fatal("a missing")
	}
	// a is now MRU; inserting c evicts b.
	c.put("c", []byte{3})
	if _, ok := c.get("b"); ok {
		t.Fatal("b not evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted out of LRU order")
	}
	// Refresh updates in place without growing.
	c.put("a", []byte{9})
	if v, _ := c.get("a"); v[0] != 9 {
		t.Fatal("refresh lost")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
	c.drop("a")
	if _, ok := c.get("a"); ok {
		t.Fatal("drop ineffective")
	}
	c.clear()
	if c.len() != 0 {
		t.Fatal("clear ineffective")
	}
}

// cachedTestbed builds a decentralized machine with a cache-enabled KVS.
func cachedTestbed(t *testing.T, entries int) *testbed {
	t.Helper()
	tb := newTestbed(t, 0)
	// Second store with a cache, same file.
	st := New(Config{App: 20, FileName: "kv.dat", Memctrl: mcID, QueueEntries: 64, CacheEntries: entries})
	var bootErr error
	booted := false
	st.OnReady = func(err error) { bootErr, booted = err, true }
	tb.nic.AddApp(st)
	tb.run()
	if !booted || bootErr != nil {
		t.Fatalf("cached store boot: %v", bootErr)
	}
	tb.store = st
	return tb
}

func (tb *testbed) opApp(t *testing.T, app uint32, req Request) Response {
	t.Helper()
	var resp Response
	got := false
	tb.nic.Deliver(msg.AppID(app), EncodeRequest(req), func(b []byte) {
		r, err := DecodeResponse(b)
		if err != nil {
			t.Fatal(err)
		}
		resp, got = r, true
	})
	tb.run()
	if !got {
		t.Fatal("no response")
	}
	return resp
}

func TestCacheServesRepeatGets(t *testing.T) {
	tb := cachedTestbed(t, 16)
	tb.opApp(t, 20, Request{Op: OpPut, Key: "hot", Value: []byte("cached-value")})
	// First get misses the cache? No: put is write-through, so it hits.
	r := tb.opApp(t, 20, Request{Op: OpGet, Key: "hot"})
	if r.Status != StatusOK || string(r.Value) != "cached-value" {
		t.Fatalf("get: %+v", r)
	}
	st := tb.store.Stats()
	if st.CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1 (write-through)", st.CacheHits)
	}
	// Cached gets are dramatically faster: no SSD flash trip.
	start := tb.eng.Now()
	tb.opApp(t, 20, Request{Op: OpGet, Key: "hot"})
	cachedTime := tb.eng.Now().Sub(start)
	if cachedTime > 10*sim.Microsecond {
		t.Fatalf("cached get took %v (flash is ~25us — did it go to the SSD?)", cachedTime)
	}
}

func TestCacheCoherentWithUpdatesAndDeletes(t *testing.T) {
	tb := cachedTestbed(t, 16)
	tb.opApp(t, 20, Request{Op: OpPut, Key: "k", Value: []byte("v1")})
	tb.opApp(t, 20, Request{Op: OpPut, Key: "k", Value: []byte("v2")})
	if r := tb.opApp(t, 20, Request{Op: OpGet, Key: "k"}); string(r.Value) != "v2" {
		t.Fatalf("stale cache after update: %q", r.Value)
	}
	tb.opApp(t, 20, Request{Op: OpDelete, Key: "k"})
	if r := tb.opApp(t, 20, Request{Op: OpGet, Key: "k"}); r.Status != StatusNotFound {
		t.Fatalf("cache resurrected deleted key: %+v", r)
	}
}

func TestCacheEvictionFallsBackToSSD(t *testing.T) {
	tb := cachedTestbed(t, 4)
	for i := 0; i < 12; i++ {
		tb.opApp(t, 20, Request{Op: OpPut, Key: fmt.Sprintf("k%02d", i), Value: bytes.Repeat([]byte{byte(i)}, 64)})
	}
	// k00 was evicted long ago; the get must still return correct data
	// (from the SSD) and repopulate the cache.
	r := tb.opApp(t, 20, Request{Op: OpGet, Key: "k00"})
	if r.Status != StatusOK || r.Value[0] != 0 || len(r.Value) != 64 {
		t.Fatalf("evicted key: %+v", r)
	}
	before := tb.store.Stats().CacheHits
	r = tb.opApp(t, 20, Request{Op: OpGet, Key: "k00"})
	if r.Status != StatusOK {
		t.Fatalf("refetched key: %+v", r)
	}
	if tb.store.Stats().CacheHits != before+1 {
		t.Fatal("miss did not repopulate the cache")
	}
}
