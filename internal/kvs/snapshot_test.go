package kvs

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"nocpu/internal/msg"
	"nocpu/internal/sim"
)

func TestSnapshotCodecRoundTrip(t *testing.T) {
	idx := map[string]loc{
		"alpha": {off: 100, n: 32},
		"beta":  {off: 900, n: 0},
		"":      {off: 5, n: 1}, // empty key is legal in the codec
	}
	blob := encodeSnapshot(idx, 12345)
	got, wm, err := decodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if wm != 12345 || len(got) != len(idx) {
		t.Fatalf("wm=%d len=%d", wm, len(got))
	}
	for k, l := range idx {
		if got[k] != l {
			t.Fatalf("entry %q: %+v vs %+v", k, got[k], l)
		}
	}
	// Deterministic encoding.
	if !bytes.Equal(blob, encodeSnapshot(idx, 12345)) {
		t.Fatal("snapshot encoding not deterministic")
	}
}

func TestSnapshotCodecRejectsTorn(t *testing.T) {
	idx := map[string]loc{"k": {off: 1, n: 2}}
	blob := encodeSnapshot(idx, 7)
	// Truncation at any point must error (length or footer check).
	for i := 0; i < len(blob); i++ {
		if _, _, err := decodeSnapshot(blob[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	// Flipped footer.
	bad := append([]byte(nil), blob...)
	bad[len(bad)-1] ^= 0xFF
	if _, _, err := decodeSnapshot(bad); err == nil {
		t.Fatal("corrupt footer accepted")
	}
	// Garbage never panics.
	f := func(b []byte) bool {
		_, _, _ = decodeSnapshot(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// snapTestbed builds a store with snapshots enabled.
func snapTestbed(t *testing.T) *testbed {
	t.Helper()
	tb := newTestbed(t, 0)
	st := New(Config{
		App: 30, FileName: "kv.dat", Memctrl: mcID,
		QueueEntries: 64, SnapshotFile: "kv.snap",
	})
	booted := false
	var bootErr error
	st.OnReady = func(err error) { bootErr, booted = err, true }
	tb.nic.AddApp(st)
	tb.run()
	if !booted || bootErr != nil {
		t.Fatalf("snapshot store boot: %v", bootErr)
	}
	tb.store = st
	return tb
}

func TestSnapshotAcceleratedRecovery(t *testing.T) {
	tb := snapTestbed(t)
	for i := 0; i < 60; i++ {
		tb.opApp(t, 30, Request{Op: OpPut, Key: fmt.Sprintf("k%02d", i), Value: []byte(fmt.Sprintf("v%02d", i))})
	}
	// Snapshot, then a few more ops past the watermark.
	snapped := false
	tb.store.Snapshot(func(err error) {
		if err != nil {
			t.Errorf("snapshot: %v", err)
		}
		snapped = true
	})
	tb.run()
	if !snapped || tb.store.Stats().Snapshots != 1 {
		t.Fatal("snapshot did not complete")
	}
	tb.opApp(t, 30, Request{Op: OpPut, Key: "k05", Value: []byte("v05-new")})
	tb.opApp(t, 30, Request{Op: OpDelete, Key: "k07"})
	tb.opApp(t, 30, Request{Op: OpPut, Key: "post", Value: []byte("after-snapshot")})

	// A second store on the same files recovers from snapshot + suffix.
	st2 := New(Config{
		App: 31, FileName: "kv.dat", Memctrl: mcID,
		QueueEntries: 64, SnapshotFile: "kv.snap",
	})
	booted := false
	var bootErr error
	st2.OnReady = func(err error) { bootErr, booted = err, true }
	tb.nic.AddApp(st2)
	tb.run()
	if !booted || bootErr != nil {
		t.Fatalf("recovery boot: %v", bootErr)
	}
	if st2.Stats().SnapshotRestores != 1 {
		t.Fatal("snapshot not used for recovery")
	}
	// The suffix scan counted only post-snapshot records.
	if recs := st2.Stats().RecoveredRecords; recs != 3 {
		t.Fatalf("suffix records = %d, want 3", recs)
	}
	if st2.Keys() != 60 { // 60 +1(post) -1(deleted k07)... 60+1-1 = 60
		t.Fatalf("keys = %d, want 60", st2.Keys())
	}
	check := func(key, want string, status Status) {
		var resp Response
		got := false
		tb.nic.Deliver(31, EncodeRequest(Request{Op: OpGet, Key: key}), func(b []byte) {
			resp, _ = DecodeResponse(b)
			got = true
		})
		tb.run()
		if !got || resp.Status != status || string(resp.Value) != want {
			t.Fatalf("get %q = %+v (%q)", key, resp, resp.Value)
		}
	}
	check("k05", "v05-new", StatusOK)
	check("post", "after-snapshot", StatusOK)
	check("k07", "", StatusNotFound)
	check("k33", "v33", StatusOK)
}

func TestCorruptSnapshotFallsBackToFullScan(t *testing.T) {
	tb := snapTestbed(t)
	for i := 0; i < 20; i++ {
		tb.opApp(t, 30, Request{Op: OpPut, Key: fmt.Sprintf("k%02d", i), Value: []byte("v")})
	}
	done := false
	tb.store.Snapshot(func(err error) { done = err == nil })
	tb.run()
	if !done {
		t.Fatal("snapshot failed")
	}
	// Corrupt the snapshot file directly on the volume.
	f, ok := tb.ssd.FS().Lookup("kv.snap")
	if !ok {
		t.Fatal("snapshot file missing")
	}
	wrote := false
	f.WriteAt(0, []byte{0xDE, 0xAD}, func(err error) { wrote = err == nil })
	tb.run()
	if !wrote {
		t.Fatal("corruption write failed")
	}

	st2 := New(Config{
		App: 31, FileName: "kv.dat", Memctrl: mcID,
		QueueEntries: 64, SnapshotFile: "kv.snap",
	})
	booted := false
	st2.OnReady = func(err error) { booted = err == nil }
	tb.nic.AddApp(st2)
	tb.run()
	if !booted {
		t.Fatal("fallback recovery failed")
	}
	if st2.Stats().SnapshotRestores != 0 {
		t.Fatal("corrupt snapshot restored")
	}
	if st2.Keys() != 20 || st2.Stats().RecoveredRecords != 20 {
		t.Fatalf("full scan: keys=%d recs=%d", st2.Keys(), st2.Stats().RecoveredRecords)
	}
}

func TestSnapshotSurvivesSSDFailure(t *testing.T) {
	tb := newTestbed(t, 400*sim.Microsecond)
	st := New(Config{
		App: 30, FileName: "kv.dat", Memctrl: mcID,
		QueueEntries: 64, SnapshotFile: "kv.snap",
	})
	booted := false
	st.OnReady = func(err error) {
		if err == nil {
			booted = true
		}
	}
	tb.nic.AddApp(st)
	tb.run()
	if !booted {
		t.Fatal("boot failed")
	}
	put := func(app uint32, k, v string) {
		done := false
		tb.nic.Deliver(msg.AppID(app), EncodeRequest(Request{Op: OpPut, Key: k, Value: []byte(v)}), func([]byte) { done = true })
		for i := 0; !done && i < 400; i++ {
			tb.eng.RunFor(100 * sim.Microsecond)
		}
		if !done {
			t.Fatal("put hung")
		}
	}
	for i := 0; i < 30; i++ {
		put(30, fmt.Sprintf("k%02d", i), "v")
	}
	snapped := false
	st.Snapshot(func(err error) { snapped = err == nil })
	tb.eng.RunFor(10 * sim.Millisecond)
	if !snapped {
		t.Fatal("snapshot failed")
	}
	put(30, "after", "snap")

	st.OnReady = nil
	tb.ssd.Kill()
	// First wait for the outage to be noticed (watchdog fires, store goes
	// unready), then for recovery.
	deadline := tb.eng.Now().Add(100 * sim.Millisecond)
	for st.Ready() && tb.eng.Now() < deadline {
		tb.eng.RunFor(100 * sim.Microsecond)
	}
	if st.Ready() {
		t.Fatal("store never noticed the SSD failure")
	}
	for !st.Ready() && tb.eng.Now() < deadline {
		tb.eng.RunFor(500 * sim.Microsecond)
	}
	if !st.Ready() {
		t.Fatal("no recovery")
	}
	// Recovery after a real failure used the snapshot and scanned only
	// the suffix.
	if st.Stats().SnapshotRestores == 0 {
		t.Fatal("snapshot unused after SSD failure")
	}
	if st.Keys() != 31 {
		t.Fatalf("keys = %d", st.Keys())
	}
}
