package kvs

import (
	"bytes"
	"fmt"
	"testing"

	"nocpu/internal/bus"
	"nocpu/internal/device"
	"nocpu/internal/interconnect"
	"nocpu/internal/memctrl"
	"nocpu/internal/msg"
	"nocpu/internal/netsim"
	"nocpu/internal/physmem"
	"nocpu/internal/sim"
	"nocpu/internal/smartnic"
	"nocpu/internal/smartssd"
	"nocpu/internal/trace"
)

const (
	mcID  = msg.DeviceID(1)
	ssdID = msg.DeviceID(2)
	nicID = msg.DeviceID(3)
)

type testbed struct {
	eng      *sim.Engine
	bus      *bus.Bus
	fab      *interconnect.Fabric
	ssd      *smartssd.SSD
	nic      *smartnic.NIC
	store    *Store
	watchdog sim.Duration
}

func newTestbed(t *testing.T, watchdog sim.Duration) *testbed {
	t.Helper()
	tb := &testbed{eng: sim.NewEngine(), watchdog: watchdog}
	tr := trace.New(0)
	mem := physmem.MustNew(32 * 1024 * physmem.PageSize)
	tb.fab = interconnect.NewFabric(tb.eng, mem, interconnect.DefaultCosts)
	busCfg := bus.DefaultConfig
	busCfg.WatchdogTimeout = watchdog
	tb.bus = bus.New(tb.eng, busCfg, tr)

	hb := sim.Duration(0)
	if watchdog > 0 {
		hb = watchdog / 4
	}

	mc, err := memctrl.New(tb.eng, tb.bus, tb.fab, tr, memctrl.Config{
		Device: device.Config{ID: mcID, Name: "memctrl", HeartbeatEvery: hb},
	})
	if err != nil {
		t.Fatal(err)
	}
	ssd, err := smartssd.New(tb.eng, tb.bus, tb.fab, tr, smartssd.Config{
		Device: device.Config{ID: ssdID, Name: "ssd", HeartbeatEvery: hb, ResetDelay: 200 * sim.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.ssd = ssd
	nic, err := smartnic.New(tb.eng, tb.bus, tb.fab, tr, smartnic.Config{
		Device: device.Config{ID: nicID, Name: "nic", HeartbeatEvery: hb},
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.nic = nic

	mc.Start()
	ssd.Start()
	nic.Start()
	tb.run()
	if !ssd.Ready() {
		t.Fatal("ssd not ready")
	}

	var done bool
	ssd.FS().Create("kv.dat", func(_ *smartssd.File, err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	})
	tb.run()
	if !done {
		t.Fatal("file create incomplete")
	}

	tb.store = New(Config{App: 10, FileName: "kv.dat", Memctrl: mcID, QueueEntries: 64})
	var bootErr error
	booted := false
	tb.store.OnReady = func(err error) { bootErr, booted = err, true }
	nic.AddApp(tb.store)
	tb.run()
	if !booted || bootErr != nil {
		t.Fatalf("store boot: booted=%v err=%v", booted, bootErr)
	}
	return tb
}

// run advances the simulation until quiescent. With a watchdog enabled
// the event queue never drains (heartbeats reschedule forever), so we
// advance a generous fixed window instead.
func (tb *testbed) run() {
	if tb.watchdog == 0 {
		tb.eng.Run()
		return
	}
	tb.eng.RunFor(20 * sim.Millisecond)
}

// op issues one KVS request through the NIC edge and returns the decoded
// response.
func (tb *testbed) op(t *testing.T, req Request) Response {
	t.Helper()
	var resp Response
	got := false
	tb.nic.Deliver(10, EncodeRequest(req), func(b []byte) {
		r, err := DecodeResponse(b)
		if err != nil {
			t.Fatal(err)
		}
		resp, got = r, true
	})
	tb.run()
	if !got {
		t.Fatal("no response")
	}
	return resp
}

func TestProtoRoundTrip(t *testing.T) {
	req := Request{Op: OpPut, Key: "k1", Value: []byte("v1")}
	got, err := DecodeRequest(EncodeRequest(req))
	if err != nil || got.Op != OpPut || got.Key != "k1" || !bytes.Equal(got.Value, []byte("v1")) {
		t.Fatalf("req round trip: %+v %v", got, err)
	}
	resp := Response{Status: StatusOK, Value: []byte("hello")}
	gr, err := DecodeResponse(EncodeResponse(resp))
	if err != nil || gr.Status != StatusOK || !bytes.Equal(gr.Value, []byte("hello")) {
		t.Fatalf("resp round trip: %+v %v", gr, err)
	}
	if _, err := DecodeRequest([]byte{1, 2}); err == nil {
		t.Error("short request accepted")
	}
	if _, err := DecodeResponse([]byte{}); err == nil {
		t.Error("short response accepted")
	}
}

func TestPutGetDelete(t *testing.T) {
	tb := newTestbed(t, 0)
	if r := tb.op(t, Request{Op: OpPut, Key: "alpha", Value: []byte("first value")}); r.Status != StatusOK {
		t.Fatalf("put: %+v", r)
	}
	r := tb.op(t, Request{Op: OpGet, Key: "alpha"})
	if r.Status != StatusOK || string(r.Value) != "first value" {
		t.Fatalf("get: %+v", r)
	}
	// Overwrite.
	tb.op(t, Request{Op: OpPut, Key: "alpha", Value: []byte("second")})
	if r := tb.op(t, Request{Op: OpGet, Key: "alpha"}); string(r.Value) != "second" {
		t.Fatalf("overwrite: %q", r.Value)
	}
	// Delete.
	if r := tb.op(t, Request{Op: OpDelete, Key: "alpha"}); r.Status != StatusOK {
		t.Fatalf("delete: %+v", r)
	}
	if r := tb.op(t, Request{Op: OpGet, Key: "alpha"}); r.Status != StatusNotFound {
		t.Fatalf("get after delete: %+v", r)
	}
	if r := tb.op(t, Request{Op: OpDelete, Key: "alpha"}); r.Status != StatusNotFound {
		t.Fatalf("double delete: %+v", r)
	}
	st := tb.store.Stats()
	if st.Puts != 2 || st.Gets != 3 || st.Deletes != 2 {
		t.Errorf("stats: %+v", st)
	}
}

func TestGetMissingKey(t *testing.T) {
	tb := newTestbed(t, 0)
	if r := tb.op(t, Request{Op: OpGet, Key: "nope"}); r.Status != StatusNotFound {
		t.Fatalf("%+v", r)
	}
}

func TestManyKeysSurviveChurn(t *testing.T) {
	tb := newTestbed(t, 0)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%03d", i)
		val := bytes.Repeat([]byte{byte(i)}, 100+i)
		if r := tb.op(t, Request{Op: OpPut, Key: key, Value: val}); r.Status != StatusOK {
			t.Fatalf("put %d: %+v", i, r)
		}
	}
	for i := 0; i < 100; i += 7 {
		key := fmt.Sprintf("key-%03d", i)
		r := tb.op(t, Request{Op: OpGet, Key: key})
		if r.Status != StatusOK || len(r.Value) != 100+i || r.Value[0] != byte(i) {
			t.Fatalf("get %d: status=%d len=%d", i, r.Status, len(r.Value))
		}
	}
	if tb.store.Keys() != 100 {
		t.Errorf("keys = %d", tb.store.Keys())
	}
}

func TestRecoveryFromScan(t *testing.T) {
	tb := newTestbed(t, 0)
	// Populate, including overwrites and deletes.
	for i := 0; i < 40; i++ {
		tb.op(t, Request{Op: OpPut, Key: fmt.Sprintf("k%d", i), Value: []byte(fmt.Sprintf("v%d", i))})
	}
	tb.op(t, Request{Op: OpPut, Key: "k3", Value: []byte("v3-new")})
	tb.op(t, Request{Op: OpDelete, Key: "k5"})

	// Boot a second store instance (fresh index) against the same file —
	// it must rebuild exactly the same view by scanning.
	st2 := New(Config{App: 11, FileName: "kv.dat", Memctrl: mcID, QueueEntries: 64})
	var bootErr error
	st2.OnReady = func(err error) { bootErr = err }
	tb.nic.AddApp(st2)
	tb.run()
	if bootErr != nil {
		t.Fatal(bootErr)
	}
	if st2.Keys() != 39 { // 40 - 1 deleted
		t.Fatalf("recovered keys = %d", st2.Keys())
	}
	var resp Response
	tb.nic.Deliver(11, EncodeRequest(Request{Op: OpGet, Key: "k3"}), func(b []byte) {
		resp, _ = DecodeResponse(b)
	})
	tb.run()
	if string(resp.Value) != "v3-new" {
		t.Fatalf("recovered k3 = %q", resp.Value)
	}
	tb.nic.Deliver(11, EncodeRequest(Request{Op: OpGet, Key: "k5"}), func(b []byte) {
		resp, _ = DecodeResponse(b)
	})
	tb.run()
	if resp.Status != StatusNotFound {
		t.Fatalf("deleted key resurrected: %+v", resp)
	}
}

func TestSSDFailureAndRecovery(t *testing.T) {
	tb := newTestbed(t, 400*sim.Microsecond)
	tb.op(t, Request{Op: OpPut, Key: "persist", Value: []byte("across failure")})

	// Kill the SSD. The watchdog must notice, broadcast, reset; the store
	// must reconnect and recover its index.
	tb.ssd.Kill()
	tb.eng.RunUntil(tb.eng.Now().Add(50 * sim.Millisecond))

	if !tb.store.Ready() {
		t.Fatalf("store not ready after recovery window (ssd state: ready=%v)", tb.ssd.Ready())
	}
	r := tb.op(t, Request{Op: OpGet, Key: "persist"})
	if r.Status != StatusOK || string(r.Value) != "across failure" {
		t.Fatalf("data lost across SSD failure: %+v", r)
	}
	if tb.store.Stats().Recoveries == 0 {
		t.Error("recovery not counted")
	}
}

func TestRequestsDuringOutageGetUnavailable(t *testing.T) {
	tb := newTestbed(t, 400*sim.Microsecond)
	tb.op(t, Request{Op: OpPut, Key: "k", Value: []byte("v")})
	tb.ssd.Kill()
	// Let the watchdog fire so the store learns about the failure.
	tb.eng.RunUntil(tb.eng.Now().Add(2 * sim.Millisecond))
	if tb.store.Ready() {
		t.Skip("store already recovered; cannot observe outage window")
	}
	var resp Response
	tb.nic.Deliver(10, EncodeRequest(Request{Op: OpGet, Key: "k"}), func(b []byte) {
		resp, _ = DecodeResponse(b)
	})
	tb.eng.RunFor(200 * sim.Microsecond)
	if resp.Status != StatusUnavailable {
		t.Fatalf("during outage: %+v", resp)
	}
}

func TestWorkloadThroughputClosedLoop(t *testing.T) {
	tb := newTestbed(t, 0)
	// Preload keys.
	for i := 0; i < 50; i++ {
		tb.op(t, Request{Op: OpPut, Key: fmt.Sprintf("k%02d", i), Value: bytes.Repeat([]byte{1}, 128)})
	}
	cl := &netsim.ClosedLoop{
		Eng:     tb.eng,
		Rand:    sim.NewRand(1),
		Workers: 8, PerWorker: 100,
		Gen: func(r *sim.Rand, seq uint64) []byte {
			return EncodeRequest(Request{Op: OpGet, Key: fmt.Sprintf("k%02d", r.Intn(50))})
		},
		IsError: func(b []byte) bool {
			r, err := DecodeResponse(b)
			return err != nil || r.Status != StatusOK
		},
		Target: func(p []byte, reply func([]byte)) { tb.nic.Deliver(10, p, reply) },
	}
	doneAt := sim.Time(-1)
	cl.Run(func() { doneAt = tb.eng.Now() })
	tb.eng.Run()
	st := cl.Stats()
	if doneAt < 0 || st.Completed != 800 {
		t.Fatalf("completed %d of 800", st.Completed)
	}
	if st.Errors != 0 {
		t.Fatalf("errors: %d", st.Errors)
	}
	if st.Throughput() < 1000 {
		t.Errorf("throughput %.0f ops/s suspiciously low", st.Throughput())
	}
	if st.Latency.P50() <= 0 {
		t.Error("no latency recorded")
	}
}

func TestWorkloadOpenLoop(t *testing.T) {
	tb := newTestbed(t, 0)
	tb.op(t, Request{Op: OpPut, Key: "hot", Value: []byte("x")})
	ol := &netsim.OpenLoop{
		Eng:      tb.eng,
		Rand:     sim.NewRand(2),
		Rate:     20000, // 20k ops/s, well under capacity
		Duration: 20 * sim.Millisecond,
		Gen: func(r *sim.Rand, seq uint64) []byte {
			return EncodeRequest(Request{Op: OpGet, Key: "hot"})
		},
		Target: func(p []byte, reply func([]byte)) { tb.nic.Deliver(10, p, reply) },
	}
	finished := false
	ol.Run(func() { finished = true })
	tb.eng.Run()
	st := ol.Stats()
	if !finished || st.Completed != st.Sent || st.Sent < 300 {
		t.Fatalf("open loop: finished=%v sent=%d done=%d", finished, st.Sent, st.Completed)
	}
}
