package kvs

import (
	"fmt"
	"sort"

	"nocpu/internal/metrics"
	"nocpu/internal/msg"
	"nocpu/internal/sim"
	"nocpu/internal/smartnic"
	"nocpu/internal/tenant"
)

// Mode selects which machine's control/data planes the store uses.
type Mode uint8

// Store modes.
const (
	// ModeDecentralized is the paper's machine: bus discovery, memory
	// controller authorization, peer-to-peer virtqueue.
	ModeDecentralized Mode = iota
	// ModeCentralDirect is the Omni-X-style baseline: kernel-mediated
	// setup (syscalls to the CPU), peer-to-peer data plane.
	ModeCentralDirect
	// ModeCentralMediated is the traditional stack: every file I/O is a
	// syscall through the kernel.
	ModeCentralMediated
)

// Config parameterizes a Store.
type Config struct {
	App msg.AppID
	// FileName is the data file on the smart SSD (discovered by
	// broadcast; §3 step 1).
	FileName string
	// Token is the file's authorization token (§3 step 3).
	Token uint64
	// Memctrl is the memory controller's bus address (decentralized
	// mode).
	Memctrl msg.DeviceID
	// Mode selects decentralized vs. centralized control/data planes.
	Mode Mode
	// Kernel is the CPU's bus address (centralized modes).
	Kernel msg.DeviceID
	// QueueEntries sizes the virtqueue (power of two).
	QueueEntries uint16
	// IndexCost models the NIC-local hash-table probe/update time.
	IndexCost sim.Duration
	// RetryEvery paces reconnection attempts after a provider failure.
	RetryEvery sim.Duration
	// KickBatch batches request doorbells on the store's virtqueue (E9
	// ablation; 0/1 = kick per request).
	KickBatch int
	// CacheEntries enables a NIC-local value cache of that many entries
	// (KV-Direct-style; the paper cites it as [30]). 0 disables. Gets
	// served from the cache never touch the SSD (E11 ablation).
	CacheEntries int
	// SnapshotFile enables index snapshots: recovery loads the snapshot
	// and scans only the log suffix past its watermark. The file is
	// created on the SSD on demand. Not supported in mediated mode.
	SnapshotFile string
	// InflightBound caps requests admitted but not yet replied. At the
	// bound new requests are shed (StatusShed), which keeps the data
	// plane's queueing delay bounded instead of letting an open-loop
	// overload grow it without limit. 0 = unbounded, the legacy
	// behavior.
	InflightBound int
	// Tenancy enables per-tenant isolation: requests stamped with a
	// tenant (Request.Tenant, written by the NIC edge) may touch only
	// keys their domain owns (KeyTenant), and each tenant's admitted
	// concurrency is capped by its registry Budget.KVSInflight. Untenanted
	// requests (Tenant 0) are trusted infrastructure — replication and
	// recovery traffic — and bypass both checks. nil = off, the legacy
	// behavior.
	Tenancy *tenant.Registry
}

// DefaultIndexCost models an on-NIC hash probe.
const DefaultIndexCost = 150 * sim.Nanosecond

// loc addresses a value inside the data file.
type loc struct {
	off uint64 // offset of the value bytes
	n   uint32
}

// Stats counts store operations.
type Stats struct {
	Gets, Puts, Deletes uint64
	Hits, Misses        uint64
	CacheHits           uint64
	Unavailable         uint64
	IOErrors            uint64
	Recoveries          uint64
	RecoveredRecords    uint64
	Snapshots           uint64
	SnapshotRestores    uint64
	Compactions         uint64
	// Shed counts requests refused by admission control: their deadline
	// had passed, or the store's service-time estimate said it would
	// pass before the reply. Every shed request gets a StatusShed
	// response — refused, never silently lost.
	Shed uint64
	// Denied counts cross-tenant key accesses refused with StatusDenied;
	// TenantShed counts requests refused against a per-tenant admission
	// budget (StatusShed, also included in Shed). Both are attributed in
	// the tenancy registry.
	Denied     uint64
	TenantShed uint64
}

// Store is the KVS application hosted on the smart NIC.
type Store struct {
	cfg Config
	rt  *smartnic.Runtime
	fc  smartnic.FileAPI

	index      map[string]loc
	fileEnd    uint64
	ready      bool
	compacting bool
	cache      *valueCache      // nil when disabled
	snap       smartnic.FileAPI // nil when snapshots disabled

	// epoch counts Boot calls. The NIC re-Boots the store after a crash
	// recovery; timers armed by the previous life capture their epoch and
	// bail if the store has since been reborn, so a stale reconnect can
	// never race the new life's own connect sequence.
	epoch uint64

	// OnReady fires whenever the store (re)connects and finishes
	// recovery; err != nil reports a failed boot.
	OnReady func(error)

	// estServe is an EWMA of observed request service time (admission
	// takes it as the cost of the work ahead of a deadline). Pure
	// bookkeeping: it schedules nothing and only requests that carry a
	// deadline ever read it.
	estServe sim.Duration
	// inflight counts admitted-but-unreplied requests against
	// Config.InflightBound; inflightG tracks it for the Q1 audit.
	// tenInflight partitions the same count per tenant, charged against
	// each tenant's registry Budget.KVSInflight so one tenant's flood
	// can exhaust only its own admission slots.
	inflight    int
	inflightG   *metrics.Gauge
	tenInflight map[tenant.ID]int

	stats Stats
}

// New builds a Store; add it to a NIC with nic.AddApp.
func New(cfg Config) *Store {
	if cfg.QueueEntries == 0 {
		cfg.QueueEntries = 64
	}
	if cfg.IndexCost == 0 {
		cfg.IndexCost = DefaultIndexCost
	}
	if cfg.RetryEvery == 0 {
		cfg.RetryEvery = 500 * sim.Microsecond
	}
	s := &Store{cfg: cfg, index: make(map[string]loc), tenInflight: make(map[tenant.ID]int)}
	s.inflightG = metrics.NewGauge(cfg.InflightBound)
	if cfg.CacheEntries > 0 {
		s.cache = newValueCache(cfg.CacheEntries)
	}
	return s
}

// AppID implements smartnic.App.
func (s *Store) AppID() msg.AppID { return s.cfg.App }

// InflightGauge exposes admitted-request depth vs InflightBound
// (overload Q1 audit).
func (s *Store) InflightGauge() *metrics.Gauge { return s.inflightG }

// Ready reports whether the store is serving.
func (s *Store) Ready() bool { return s.ready }

// Stats returns a copy of the counters.
func (s *Store) Stats() Stats { return s.stats }

// Keys returns the number of live keys.
func (s *Store) Keys() int { return len(s.index) }

// KeyList returns every live key in sorted order. The fabric router uses
// it to enumerate a shard for re-replication after a membership change;
// sorting keeps that sweep deterministic.
func (s *Store) KeyList() []string {
	out := make([]string, 0, len(s.index))
	for k := range s.index {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Boot implements smartnic.App: run the Figure-2 sequence, then recover
// the index from the data file. On a re-Boot (the NIC crashed and
// rejoined) every piece of NIC-resident state is volatile and starts
// over; only the log on the SSD survives, and recover() rebuilds from it.
func (s *Store) Boot(rt *smartnic.Runtime) {
	s.epoch++
	s.rt = rt
	s.ready = false
	s.compacting = false
	s.fc = nil
	s.snap = nil
	s.index = make(map[string]loc)
	s.fileEnd = 0
	s.tenInflight = make(map[tenant.ID]int)
	if s.cache != nil {
		s.cache.clear()
	}
	rt.OnResourceError = func(e *msg.ErrorNotify) {
		// The provider reset our resource (§4): drop to unavailable and
		// reconnect.
		s.ready = false
		s.scheduleReconnect()
	}
	s.connect()
}

func (s *Store) connect() {
	done := func(fc smartnic.FileAPI, err error) {
		if err != nil {
			if s.OnReady != nil {
				s.OnReady(fmt.Errorf("kvs: connect: %w", err))
			}
			s.scheduleReconnect()
			return
		}
		s.fc = fc
		s.openSnapshot(func() {
			s.finishConnect()
		})
	}
	s.dispatchOpen(done)
}

// dispatchOpen issues the mode-appropriate open for the data file.
func (s *Store) dispatchOpen(done func(fc smartnic.FileAPI, err error)) {
	tune := func(fc smartnic.FileAPI, err error) {
		if err == nil && s.cfg.KickBatch > 1 {
			if pc, ok := fc.(*smartnic.FileClient); ok {
				pc.Conn.Queue.KickBatch = s.cfg.KickBatch
			}
		}
		done(fc, err)
	}
	switch s.cfg.Mode {
	case ModeCentralDirect:
		s.rt.OpenFileCentralDirect(s.cfg.Kernel, s.cfg.FileName, s.cfg.Token, s.cfg.QueueEntries, tune)
	case ModeCentralMediated:
		s.rt.OpenFileMediated(s.cfg.Kernel, s.cfg.FileName, s.cfg.Token, tune)
	default:
		s.rt.OpenFile(s.cfg.Memctrl, s.cfg.FileName, s.cfg.Token, s.cfg.QueueEntries, func(fc *smartnic.FileClient, err error) {
			tune(fc, err)
		})
	}
}

// openSnapshot opens (creating if needed) the snapshot file when
// configured and supported in this mode.
func (s *Store) openSnapshot(next func()) {
	if s.cfg.SnapshotFile == "" || s.cfg.Mode == ModeCentralMediated || s.snap != nil {
		next()
		return
	}
	s.rt.OpenFileCreate(s.cfg.Memctrl, s.cfg.SnapshotFile, s.cfg.Token, 16, func(fc *smartnic.FileClient, err error) {
		if err == nil {
			s.snap = fc
		}
		// Snapshot is an accelerator: failure to open it degrades to
		// full-scan recovery, never to an error.
		next()
	})
}

// finishConnect recovers the index and marks the store serving.
func (s *Store) finishConnect() {
	s.recover(func(err error) {
		if err != nil {
			if s.OnReady != nil {
				s.OnReady(fmt.Errorf("kvs: recovery: %w", err))
			}
			s.scheduleReconnect()
			return
		}
		s.ready = true
		if s.OnReady != nil {
			s.OnReady(nil)
		}
	})
}

func (s *Store) scheduleReconnect() {
	epoch := s.epoch
	s.rt.Engine().After(s.cfg.RetryEvery, func() {
		if epoch != s.epoch || s.ready {
			return
		}
		s.connect()
	})
}

// PeerFailed implements smartnic.App: the bus told us our provider died
// (§4). Fail everything in flight — replies will never arrive — and
// reconnect once the device is reset.
func (s *Store) PeerFailed(dev msg.DeviceID) {
	if s.snap != nil && s.snap.Provider() == dev {
		// The snapshot connection died with the device; reopen on
		// reconnect.
		s.snap.Fail(fmt.Errorf("kvs: snapshot provider %v failed", dev))
		s.snap = nil
	}
	if s.fc != nil && s.fc.Provider() == dev {
		s.ready = false
		s.stats.Recoveries++
		s.fc.Fail(fmt.Errorf("kvs: provider %v failed", dev))
		s.scheduleReconnect()
	}
}

// recover rebuilds the index: seed from the snapshot when one is valid,
// then scan the log (all of it, or just the suffix past the snapshot's
// watermark).
func (s *Store) recover(cb func(error)) {
	s.index = make(map[string]loc)
	s.fileEnd = 0
	if s.cache != nil {
		s.cache.clear()
	}
	s.loadSnapshot(func(start uint64) {
		s.fc.Stat(func(size uint64, err error) {
			if err != nil {
				cb(err)
				return
			}
			if start > size {
				// Snapshot is ahead of the log (log truncated?): distrust
				// it entirely.
				s.index = make(map[string]loc)
				start = 0
			}
			s.scanChunk(start, size, nil, cb)
		})
	})
}

// scanChunk reads forward through [off, size), carrying partial-record
// bytes between reads.
func (s *Store) scanChunk(off, size uint64, carry []byte, cb func(error)) {
	// Consume complete records from carry.
	for {
		m, ok := parseRecordHeader(carry)
		if !ok || len(carry) < m.totalLen() {
			break
		}
		key := string(carry[recordHeader : recordHeader+m.keyLen])
		consumed := uint64(m.totalLen())
		valOff := off - uint64(len(carry)) + recordHeader + uint64(m.keyLen)
		if m.del {
			delete(s.index, key)
		} else {
			s.index[key] = loc{off: valOff, n: uint32(m.valLen)}
		}
		s.stats.RecoveredRecords++
		carry = carry[consumed:]
	}
	if off >= size {
		if len(carry) != 0 {
			cb(fmt.Errorf("kvs: %d trailing bytes in log (torn write?)", len(carry)))
			return
		}
		s.fileEnd = size
		cb(nil)
		return
	}
	n := s.fc.MaxIO()
	if rem := size - off; uint64(n) > rem {
		n = int(rem)
	}
	s.fc.Read(off, n, func(b []byte, err error) {
		if err != nil {
			cb(err)
			return
		}
		if len(b) == 0 {
			cb(fmt.Errorf("kvs: empty read during recovery at %d", off))
			return
		}
		s.scanChunk(off+uint64(len(b)), size, append(carry, b...), cb)
	})
}

// ShedResponse implements smartnic.Shedder: the reply the NIC sends on
// the store's behalf when its bounded receive queue refuses a request.
// Load shedding must answer, never vanish — an open-loop client counts
// every request until its response arrives.
func (s *Store) ShedResponse() []byte {
	s.stats.Shed++
	return EncodeResponse(Response{Status: StatusShed})
}

// ServeNetwork implements smartnic.App: decode, admit, execute, reply.
// The request's Tenant stamp is taken as-is — this is the trusted path
// (replication, recovery, and fabric frames whose stamp was written at
// the originating machine's edge).
func (s *Store) ServeNetwork(payload []byte, reply func([]byte)) {
	req, err := DecodeRequest(payload)
	if err != nil {
		reply(EncodeResponse(Response{Status: StatusError}))
		return
	}
	s.serve(req, reply)
}

// ServeTenantNetwork implements smartnic.TenantApp: the NIC edge
// authenticated the caller as tn, and that stamp overrides whatever the
// client wrote into the payload — a forged Request.Tenant never
// survives the edge.
func (s *Store) ServeTenantNetwork(tn uint16, payload []byte, reply func([]byte)) {
	req, err := DecodeRequest(payload)
	if err != nil {
		reply(EncodeResponse(Response{Status: StatusError}))
		return
	}
	req.Tenant = uint32(tn)
	s.serve(req, reply)
}

// serve admits and executes one decoded request.
func (s *Store) serve(req Request, reply func([]byte)) {
	if !s.ready {
		s.stats.Unavailable++
		reply(EncodeResponse(Response{Status: StatusUnavailable}))
		return
	}
	// Tenancy gate, ahead of all admission: a cross-tenant probe is
	// refused with a typed StatusDenied (never NotFound, which would
	// leak key existence) and recorded against the probing tenant; a
	// tenant at its admission budget sheds only its own requests.
	who := tenant.ID(req.Tenant)
	if reg := s.cfg.Tenancy; reg != nil && who != 0 {
		if owner := KeyTenant(req.Key); owner != 0 && owner != who {
			s.stats.Denied++
			reg.Record(s.rt.Engine().Now(), who, owner, tenant.DenyKVS,
				fmt.Sprintf("%v %v %q refused", who, req.Op, req.Key))
			reply(EncodeResponse(Response{Status: StatusDenied}))
			return
		}
		if b := reg.Budget(who); b.KVSInflight > 0 && s.tenInflight[who] >= int(b.KVSInflight) {
			s.stats.Shed++
			s.stats.TenantShed++
			reg.Record(s.rt.Engine().Now(), who, 0, tenant.DenyBudget,
				fmt.Sprintf("%v over kvs budget %d", who, b.KVSInflight))
			reply(EncodeResponse(Response{Status: StatusShed}))
			return
		}
	}
	// Deadline-based admission: working on a request that will miss its
	// deadline anyway steals service time from requests that can still
	// make theirs — that is the goodput-collapse mechanism. Shed now,
	// cheaply, with an explicit status.
	if req.Deadline != 0 {
		eta := s.rt.Engine().Now().Add(s.cfg.IndexCost + s.estServe)
		if uint64(eta) > req.Deadline {
			// Decay the estimate on every shed (same 1/8 gain as the
			// update): sheds produce no completion samples, so without
			// decay a once-high estimate would latch the store shut
			// forever. Decaying re-probes — if service is still slow,
			// the next admitted request pushes the estimate right back.
			s.estServe -= s.estServe / 8
			s.stats.Shed++
			reply(EncodeResponse(Response{Status: StatusShed}))
			return
		}
	}
	// Concurrency-based admission: past the inflight bound the data
	// plane's queueing delay is no longer worth the wait, deadline or
	// not. Shedding here holds latency for admitted work flat while an
	// open-loop overload rages.
	if bound := s.cfg.InflightBound; bound > 0 && s.inflight >= bound {
		s.stats.Shed++
		reply(EncodeResponse(Response{Status: StatusShed}))
		return
	}
	s.inflight++
	s.inflightG.Set(s.inflight)
	if who != 0 {
		s.tenInflight[who]++
	}
	start := s.rt.Engine().Now()
	done := func(b []byte) {
		// Fold the observed service time into the admission estimate
		// (EWMA, 1/8 gain). State only — no events, no trace impact.
		sample := s.rt.Engine().Now().Sub(start)
		s.estServe += (sample - s.estServe) / 8
		s.inflight--
		s.inflightG.Set(s.inflight)
		if who != 0 {
			s.tenInflight[who]--
		}
		reply(b)
	}
	// Charge the NIC-local index probe before touching the data plane.
	s.rt.Engine().After(s.cfg.IndexCost, func() {
		switch req.Op {
		case OpGet:
			s.get(req, done)
		case OpPut:
			s.put(req, done)
		case OpDelete:
			s.del(req, done)
		default:
			done(EncodeResponse(Response{Status: StatusError}))
		}
	})
}

func (s *Store) get(req Request, reply func([]byte)) {
	s.stats.Gets++
	l, ok := s.index[req.Key]
	if !ok {
		s.stats.Misses++
		reply(EncodeResponse(Response{Status: StatusNotFound}))
		return
	}
	s.stats.Hits++
	if s.cache != nil {
		if val, hit := s.cache.get(req.Key); hit {
			// Served entirely from NIC memory — no data-plane traffic.
			s.stats.CacheHits++
			reply(EncodeResponse(Response{Status: StatusOK, Value: val}))
			return
		}
	}
	if l.n == 0 {
		reply(EncodeResponse(Response{Status: StatusOK}))
		return
	}
	s.fc.Read(l.off, int(l.n), func(b []byte, err error) {
		if err != nil {
			s.stats.IOErrors++
			reply(EncodeResponse(Response{Status: StatusError}))
			return
		}
		if s.cache != nil {
			s.cache.put(req.Key, b)
		}
		reply(EncodeResponse(Response{Status: StatusOK, Value: b}))
	})
}

func (s *Store) put(req Request, reply func([]byte)) {
	s.stats.Puts++
	if s.compacting {
		s.stats.Unavailable++
		reply(EncodeResponse(Response{Status: StatusUnavailable}))
		return
	}
	rec := encodeRecord(req.Key, req.Value, false)
	if len(rec) > s.fc.MaxIO() {
		reply(EncodeResponse(Response{Status: StatusError}))
		return
	}
	// The store is the file's only writer: it owns the append offset, so
	// concurrent puts write disjoint ranges.
	off := s.fileEnd
	s.fileEnd += uint64(len(rec))
	s.fc.Write(off, rec, func(err error) {
		if err != nil {
			s.stats.IOErrors++
			reply(EncodeResponse(Response{Status: StatusError}))
			return
		}
		s.index[req.Key] = loc{off: off + recordHeader + uint64(len(req.Key)), n: uint32(len(req.Value))}
		if s.cache != nil {
			// Write-through: the cache never holds a value newer or older
			// than the log.
			s.cache.put(req.Key, req.Value)
		}
		reply(EncodeResponse(Response{Status: StatusOK}))
	})
}

func (s *Store) del(req Request, reply func([]byte)) {
	s.stats.Deletes++
	if s.compacting {
		s.stats.Unavailable++
		reply(EncodeResponse(Response{Status: StatusUnavailable}))
		return
	}
	if _, ok := s.index[req.Key]; !ok {
		s.stats.Misses++
		reply(EncodeResponse(Response{Status: StatusNotFound}))
		return
	}
	rec := encodeRecord(req.Key, nil, true)
	off := s.fileEnd
	s.fileEnd += uint64(len(rec))
	s.fc.Write(off, rec, func(err error) {
		if err != nil {
			s.stats.IOErrors++
			reply(EncodeResponse(Response{Status: StatusError}))
			return
		}
		delete(s.index, req.Key)
		if s.cache != nil {
			s.cache.drop(req.Key)
		}
		reply(EncodeResponse(Response{Status: StatusOK}))
	})
}
