package kvs

import "container/list"

// valueCache is the NIC-local hot-value cache (KV-Direct style, the
// paper's reference [30]): an LRU of up to cap entries kept in the NIC's
// own memory. A cache hit serves a get without touching the data plane at
// all — the strongest form of "the CPU (and here even the SSD) is not
// involved".
//
// Consistency: the store is the file's only writer, so write-through
// updates on put and eviction on delete keep the cache exact (never
// stale). It is cleared on recovery because the rebuilt index may reflect
// a different prefix of the log than the cache observed.
type valueCache struct {
	cap     int
	entries map[string]*list.Element
	lru     *list.List // front = most recent
}

type cacheEntry struct {
	key string
	val []byte
}

func newValueCache(capacity int) *valueCache {
	return &valueCache{
		cap:     capacity,
		entries: make(map[string]*list.Element, capacity),
		lru:     list.New(),
	}
}

// get returns the cached value and marks it most recently used.
func (c *valueCache) get(key string) ([]byte, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// put inserts or refreshes an entry, evicting the LRU tail as needed.
func (c *valueCache) put(key string, val []byte) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.lru.MoveToFront(el)
		return
	}
	for len(c.entries) >= c.cap {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		c.lru.Remove(tail)
		delete(c.entries, tail.Value.(*cacheEntry).key)
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, val: val})
}

// drop removes an entry (delete path).
func (c *valueCache) drop(key string) {
	if el, ok := c.entries[key]; ok {
		c.lru.Remove(el)
		delete(c.entries, key)
	}
}

// clear empties the cache (recovery path).
func (c *valueCache) clear() {
	c.entries = make(map[string]*list.Element, c.cap)
	c.lru.Init()
}

// len reports the number of cached entries.
func (c *valueCache) len() int { return len(c.entries) }
