package kvs

import "nocpu/internal/tenant"

// KeyTenant returns the isolation domain that owns a key, derived from
// the conventional "t<id>/" name prefix ("t3/orders" belongs to tenant
// 3). Keys without the prefix are shared. Deriving ownership from the
// key itself is stateless — it survives replication, re-replication
// after a membership change, and log-scan recovery without a side
// table, because the owner travels with every record.
func KeyTenant(key string) tenant.ID {
	if len(key) < 3 || key[0] != 't' {
		return 0
	}
	var id uint64
	for i := 1; i < len(key); i++ {
		c := key[i]
		if c == '/' {
			if i == 1 {
				return 0 // "t/..." names no tenant
			}
			return tenant.ID(id)
		}
		if c < '0' || c > '9' {
			return 0
		}
		id = id*10 + uint64(c-'0')
		if id > 0xFFFF {
			return 0
		}
	}
	return 0 // no '/': not a tenant-owned name
}
