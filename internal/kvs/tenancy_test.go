package kvs

import (
	"bytes"
	"testing"

	"nocpu/internal/tenant"
)

func TestKeyTenant(t *testing.T) {
	cases := []struct {
		key  string
		want tenant.ID
	}{
		{"t1/secret", 1},
		{"t42/orders/7", 42},
		{"t65535/x", 65535},
		{"shared", 0},
		{"temp/x", 0},   // non-digit after 't'
		{"t/x", 0},      // no id
		{"t1", 0},       // no '/'
		{"t99999/x", 0}, // overflows uint16
		{"", 0},
		{"x1/t2", 0},
	}
	for _, c := range cases {
		if got := KeyTenant(c.key); got != c.want {
			t.Errorf("KeyTenant(%q) = %v, want %v", c.key, got, c.want)
		}
	}
}

// The tenant stamp is a second trailing optional behind Deadline: every
// combination must round-trip, and tenant-free requests must stay
// byte-identical to the legacy format.
func TestRequestTenantWire(t *testing.T) {
	cases := []Request{
		{Op: OpGet, Key: "k"},
		{Op: OpGet, Key: "k", Deadline: 77},
		{Op: OpGet, Key: "k", Tenant: 3},
		{Op: OpPut, Key: "k", Value: []byte("v"), Deadline: 77, Tenant: 3},
	}
	for _, c := range cases {
		got, err := DecodeRequest(EncodeRequest(c))
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if got.Op != c.Op || got.Key != c.Key || !bytes.Equal(got.Value, c.Value) ||
			got.Deadline != c.Deadline || got.Tenant != c.Tenant {
			t.Errorf("round trip %+v -> %+v", c, got)
		}
	}
	plain := EncodeRequest(Request{Op: OpGet, Key: "k"})
	if n := len(plain); n != 7+1 {
		t.Errorf("tenant-free request grew to %d bytes (format break)", n)
	}
}

// tenantStore boots a second, tenancy-enabled store instance (app 12)
// on the shared testbed file.
func tenantStore(t *testing.T, tb *testbed, reg *tenant.Registry) *Store {
	t.Helper()
	st := New(Config{App: 12, FileName: "kv.dat", Memctrl: mcID, QueueEntries: 64, Tenancy: reg})
	var bootErr error
	booted := false
	st.OnReady = func(err error) { bootErr, booted = err, true }
	tb.nic.AddApp(st)
	tb.run()
	if !booted || bootErr != nil {
		t.Fatalf("tenant store boot: booted=%v err=%v", booted, bootErr)
	}
	return st
}

// opFrom issues one request through the NIC edge with an authenticated
// tenant stamp.
func opFrom(t *testing.T, tb *testbed, tn uint16, req Request) Response {
	t.Helper()
	var resp Response
	got := false
	tb.nic.DeliverFrom(tn, 12, EncodeRequest(req), func(b []byte) {
		r, err := DecodeResponse(b)
		if err != nil {
			t.Fatal(err)
		}
		resp, got = r, true
	})
	tb.run()
	if !got {
		t.Fatal("no response")
	}
	return resp
}

// S1 at the application layer: no cross-tenant key access ever
// succeeds, every probe is refused with the typed StatusDenied (never
// NotFound, which would leak existence), and the registry attributes
// each refusal to the probing tenant.
func TestCrossTenantKeyAccessDenied(t *testing.T) {
	tb := newTestbed(t, 0)
	reg := tenant.NewRegistry()
	st := tenantStore(t, tb, reg)

	if r := opFrom(t, tb, 1, Request{Op: OpPut, Key: "t1/secret", Value: []byte("mine")}); r.Status != StatusOK {
		t.Fatalf("owner put: %+v", r)
	}
	if r := opFrom(t, tb, 1, Request{Op: OpGet, Key: "t1/secret"}); r.Status != StatusOK || string(r.Value) != "mine" {
		t.Fatalf("owner get: %+v", r)
	}

	// Probes from tenant 2: read, blind read, overwrite, delete — all
	// StatusDenied, and existing vs. absent keys are indistinguishable.
	probes := []Request{
		{Op: OpGet, Key: "t1/secret"},
		{Op: OpGet, Key: "t1/absent"},
		{Op: OpPut, Key: "t1/secret", Value: []byte("evil")},
		{Op: OpDelete, Key: "t1/secret"},
	}
	for _, p := range probes {
		if r := opFrom(t, tb, 2, p); r.Status != StatusDenied {
			t.Errorf("probe %v %q: status %d, want StatusDenied", p.Op, p.Key, r.Status)
		}
	}
	// A forged in-payload stamp does not survive the edge.
	if r := opFrom(t, tb, 2, Request{Op: OpGet, Key: "t1/secret", Tenant: 1}); r.Status != StatusDenied {
		t.Errorf("forged stamp: status %d, want StatusDenied", r.Status)
	}
	// The victim's data is intact.
	if r := opFrom(t, tb, 1, Request{Op: OpGet, Key: "t1/secret"}); r.Status != StatusOK || string(r.Value) != "mine" {
		t.Fatalf("victim data after probes: %+v", r)
	}
	// Untenanted requests are trusted infrastructure (replication,
	// recovery): they pass.
	var infra Response
	tb.nic.Deliver(12, EncodeRequest(Request{Op: OpGet, Key: "t1/secret"}), func(b []byte) {
		infra, _ = DecodeResponse(b)
	})
	tb.run()
	if infra.Status != StatusOK {
		t.Errorf("untenanted infrastructure read: %+v", infra)
	}
	// Shared keys stay open to every tenant.
	if r := opFrom(t, tb, 2, Request{Op: OpPut, Key: "shared/x", Value: []byte("ok")}); r.Status != StatusOK {
		t.Errorf("shared put: %+v", r)
	}

	if got := st.Stats().Denied; got != 5 {
		t.Errorf("Denied = %d, want 5", got)
	}
	dens := reg.DenialsBy(2)
	if len(dens) != 5 {
		t.Fatalf("registry denials by t2 = %d, want 5", len(dens))
	}
	for _, d := range dens {
		if d.Class != tenant.DenyKVS || d.Victim != 1 {
			t.Errorf("denial %+v, want class kvs victim t1", d)
		}
	}
	if len(reg.DenialsBy(1)) != 0 {
		t.Error("victim accrued denials for the attacker's probes")
	}
}

// S3 at the application layer: a tenant at its admission budget sheds
// only its own requests; an unbudgeted tenant's traffic is untouched.
func TestPerTenantAdmissionBudget(t *testing.T) {
	tb := newTestbed(t, 0)
	reg := tenant.NewRegistry()
	reg.SetBudget(2, tenant.Budget{KVSInflight: 1})
	st := tenantStore(t, tb, reg)

	if r := opFrom(t, tb, 2, Request{Op: OpPut, Key: "t2/k", Value: []byte("v")}); r.Status != StatusOK {
		t.Fatalf("seed put: %+v", r)
	}
	if r := opFrom(t, tb, 1, Request{Op: OpPut, Key: "t1/k", Value: []byte("v")}); r.Status != StatusOK {
		t.Fatalf("seed put: %+v", r)
	}

	// A concurrent burst from each tenant. Tenant 2 (budget 1) must see
	// sheds; tenant 1 (no budget) must not.
	count := func(tn uint16, key string) map[Status]int {
		out := make(map[Status]int)
		for i := 0; i < 8; i++ {
			tb.nic.DeliverFrom(tn, 12, EncodeRequest(Request{Op: OpGet, Key: key}), func(b []byte) {
				r, err := DecodeResponse(b)
				if err != nil {
					t.Fatal(err)
				}
				out[r.Status]++
			})
		}
		tb.run()
		return out
	}
	attacker := count(2, "t2/k")
	victim := count(1, "t1/k")

	if attacker[StatusShed] == 0 {
		t.Errorf("budgeted tenant burst never shed: %v", attacker)
	}
	if attacker[StatusOK] == 0 {
		t.Errorf("budgeted tenant starved entirely: %v", attacker)
	}
	if victim[StatusOK] != 8 {
		t.Errorf("unbudgeted tenant sheds leaked: %v", victim)
	}
	if st.Stats().TenantShed == 0 {
		t.Error("TenantShed not counted")
	}
	for _, d := range reg.DenialsBy(2) {
		if d.Class != tenant.DenyBudget {
			t.Errorf("denial %+v, want class budget", d)
		}
	}
	if len(reg.DenialsBy(2)) == 0 {
		t.Error("budget sheds not attributed in the registry")
	}
	if len(reg.DenialsBy(1)) != 0 {
		t.Error("victim accrued denials")
	}
}
