package kvs

import (
	"fmt"

	"nocpu/internal/smartnic"
)

// Log compaction: the data file is an append-only log, so overwrites and
// deletes leave dead records behind. Compact streams the live index into
// a fresh file on the SSD and atomically renames it over the log
// (rename-over, server side), then switches the store's connection to
// the new file.
//
// Serving during compaction: gets keep flowing from the old file (its
// records are immutable); puts and deletes are refused with
// StatusUnavailable for the (short) duration — the store is the only
// writer, so this is the whole consistency story.

// Compact rewrites the log to contain only live records. cb reports the
// outcome; on success the store serves from the compacted file.
func (s *Store) Compact(cb func(error)) {
	if !s.ready {
		cb(fmt.Errorf("kvs: compact on unready store"))
		return
	}
	if s.cfg.Mode == ModeCentralMediated {
		cb(fmt.Errorf("kvs: compact unsupported in mediated mode"))
		return
	}
	if s.compacting {
		cb(fmt.Errorf("kvs: compaction already running"))
		return
	}
	s.compacting = true
	finish := func(err error) {
		s.compacting = false
		cb(err)
	}
	tmpName := s.cfg.FileName + ".compact"
	s.rt.OpenFileCreate(s.cfg.Memctrl, tmpName, s.cfg.Token, s.cfg.QueueEntries, func(nfc *smartnic.FileClient, err error) {
		if err != nil {
			finish(fmt.Errorf("kvs: compact open: %w", err))
			return
		}
		nfc.Truncate(func(err error) {
			if err != nil {
				finish(err)
				return
			}
			// Deterministic streaming order.
			keys := make([]string, 0, len(s.index))
			for k := range s.index {
				keys = append(keys, k)
			}
			sortStrings(keys)
			newIndex := make(map[string]loc, len(keys))
			s.compactStream(nfc, keys, 0, 0, newIndex, finish)
		})
	})
}

// compactStream copies live records one key at a time.
func (s *Store) compactStream(nfc *smartnic.FileClient, keys []string, i int, newOff uint64, newIndex map[string]loc, finish func(error)) {
	if i >= len(keys) {
		s.compactSwitch(nfc, newOff, newIndex, finish)
		return
	}
	key := keys[i]
	l, ok := s.index[key]
	if !ok { // deleted mid-compaction (cannot happen while writes are blocked)
		s.compactStream(nfc, keys, i+1, newOff, newIndex, finish)
		return
	}
	copyRec := func(val []byte) {
		rec := encodeRecord(key, val, false)
		off := newOff
		nfc.Write(off, rec, func(err error) {
			if err != nil {
				finish(fmt.Errorf("kvs: compact write: %w", err))
				return
			}
			newIndex[key] = loc{off: off + recordHeader + uint64(len(key)), n: uint32(len(val))}
			s.compactStream(nfc, keys, i+1, off+uint64(len(rec)), newIndex, finish)
		})
	}
	if l.n == 0 {
		copyRec(nil)
		return
	}
	s.fc.Read(l.off, int(l.n), func(b []byte, err error) {
		if err != nil {
			finish(fmt.Errorf("kvs: compact read: %w", err))
			return
		}
		copyRec(b)
	})
}

// compactSwitch renames the new file over the log and swaps connections.
func (s *Store) compactSwitch(nfc *smartnic.FileClient, newEnd uint64, newIndex map[string]loc, finish func(error)) {
	nfc.Rename(s.cfg.FileName, func(err error) {
		if err != nil {
			finish(fmt.Errorf("kvs: compact rename: %w", err))
			return
		}
		old := s.fc
		s.fc = nfc
		s.index = newIndex
		s.fileEnd = newEnd
		if s.cache != nil {
			// Value bytes are unchanged, but keep it simple and exact.
			s.cache.clear()
		}
		s.stats.Compactions++
		// The snapshot's watermark refers to the old log: invalidate it.
		wrapUp := func() {
			// Close the connection to the (now deleted) old file.
			if ofc, ok := old.(*smartnic.FileClient); ok {
				ofc.Conn.Close(func(error) {})
			}
			finish(nil)
		}
		if s.snap != nil {
			s.snap.Truncate(func(error) { wrapUp() })
			return
		}
		wrapUp()
	})
}
