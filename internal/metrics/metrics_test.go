package metrics

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"nocpu/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram not all-zero")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(sim.Duration(i * 1000))
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Min() != 1000 || h.Max() != 100000 {
		t.Errorf("min=%v max=%v", h.Min(), h.Max())
	}
	if m := h.Mean(); m != 50500 {
		t.Errorf("mean = %v, want 50500", m)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	var samples []sim.Duration
	r := sim.NewRand(1)
	for i := 0; i < 50000; i++ {
		d := sim.Duration(r.Intn(1000000) + 1)
		samples = append(samples, d)
		h.Observe(d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := samples[int(q*float64(len(samples)))]
		got := h.Quantile(q)
		rel := float64(got-exact) / float64(exact)
		if rel < -0.10 || rel > 0.10 {
			t.Errorf("q=%v: got %v exact %v (rel err %.3f)", q, got, exact, rel)
		}
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram()
	h.Observe(500)
	if h.Quantile(0) != 500 || h.Quantile(1) != 500 || h.Quantile(0.5) != 500 {
		t.Error("single-sample quantiles wrong")
	}
	h.Observe(0) // zero sample must be accepted
	if h.Min() != 0 {
		t.Error("zero sample not recorded as min")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Observe(100)
	a.Observe(200)
	b.Observe(300)
	a.Merge(b)
	if a.Count() != 3 || a.Max() != 300 || a.Sum() != 600 {
		t.Errorf("merge: n=%d max=%v sum=%v", a.Count(), a.Max(), a.Sum())
	}
	empty := NewHistogram()
	a.Merge(empty) // merging empty must not corrupt min
	if a.Min() != 100 {
		t.Errorf("min after empty merge = %v", a.Min())
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(123)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Quantile(0.9) != 0 {
		t.Error("reset incomplete")
	}
	h.Observe(7)
	if h.Min() != 7 {
		t.Error("min tracking broken after reset")
	}
}

// Property: quantiles are monotone in q and bounded by [min, max].
func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(raw []uint32) bool {
		h := NewHistogram()
		for _, v := range raw {
			h.Observe(sim.Duration(v % 10000000))
		}
		if h.Count() == 0 {
			return true
		}
		prev := sim.Duration(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev || v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHistogramSummary(t *testing.T) {
	h := NewHistogram()
	h.Observe(1000)
	s := h.Summary()
	if !strings.Contains(s, "n=1") || !strings.Contains(s, "1.000us") {
		t.Errorf("summary = %q", s)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("b", 3.14159)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "3.14") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// Columns aligned: header and separator equal width.
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("misaligned header/separator:\n%s", out)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]uint64{"c": 1, "a": 2, "b": 3}
	keys := Sorted(m)
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Errorf("Sorted = %v", keys)
	}
}
