// Package metrics provides the measurement primitives used by the
// experiment harness: counters, log-bucketed latency histograms with
// percentile queries, and plain-text table rendering for the tables
// recorded in EXPERIMENTS.md.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"nocpu/internal/sim"
)

// Histogram records durations in logarithmic buckets (HdrHistogram-style:
// ~4% relative error) so percentile queries are O(buckets) and memory is
// constant regardless of sample count.
type Histogram struct {
	counts []uint64
	total  uint64
	sum    sim.Duration
	min    sim.Duration
	max    sim.Duration
}

// bucketsPerOctave controls resolution: 16 sub-buckets per power of two.
const bucketsPerOctave = 16

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, 64*bucketsPerOctave), min: math.MaxInt64}
}

func bucketOf(d sim.Duration) int {
	if d < 1 {
		d = 1
	}
	v := uint64(d)
	// Index = octave*16 + position within octave.
	oct := 63 - leadingZeros(v)
	var sub uint64
	if oct > 4 {
		sub = (v >> (uint(oct) - 4)) & (bucketsPerOctave - 1)
	} else {
		sub = (v << (4 - uint(oct))) & (bucketsPerOctave - 1)
	}
	return oct*bucketsPerOctave + int(sub)
}

func leadingZeros(v uint64) int {
	n := 0
	for i := 63; i >= 0; i-- {
		if v&(1<<uint(i)) != 0 {
			return n
		}
		n++
	}
	return 64
}

// bucketValue returns a representative duration for bucket i (its lower
// bound).
func bucketValue(i int) sim.Duration {
	oct := i / bucketsPerOctave
	sub := uint64(i % bucketsPerOctave)
	if oct > 4 {
		return sim.Duration((uint64(1) << uint(oct)) | (sub << (uint(oct) - 4)))
	}
	return sim.Duration((uint64(1) << uint(oct)) | (sub >> (4 - uint(oct))))
}

// Observe records one sample.
func (h *Histogram) Observe(d sim.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)]++
	h.total++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the average sample, or 0 with no samples.
func (h *Histogram) Mean() sim.Duration {
	if h.total == 0 {
		return 0
	}
	return h.sum / sim.Duration(h.total)
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() sim.Duration {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample.
func (h *Histogram) Max() sim.Duration { return h.max }

// Sum returns the total of all samples.
func (h *Histogram) Sum() sim.Duration { return h.sum }

// Quantile returns the approximate q-quantile (0 <= q <= 1). The true
// value lies within one bucket (~6%) of the result.
func (h *Histogram) Quantile(q float64) sim.Duration {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			v := bucketValue(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// P50, P99, P999 are convenience quantiles.
func (h *Histogram) P50() sim.Duration  { return h.Quantile(0.50) }
func (h *Histogram) P99() sim.Duration  { return h.Quantile(0.99) }
func (h *Histogram) P999() sim.Duration { return h.Quantile(0.999) }

// Merge adds all samples from other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.total > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	clear(h.counts)
	h.total, h.sum, h.max = 0, 0, 0
	h.min = math.MaxInt64
}

// Summary renders a one-line digest.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.total, h.Mean(), h.P50(), h.P99(), h.Max())
}

// Table is a simple column-aligned table used for experiment output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, hd := range t.Headers {
		widths[i] = len(hd)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Gauge tracks an instantaneous queue depth with a high-watermark and an
// optional bound, the primitive behind the overload audit's Q1 invariant
// (no queue exceeds its bound). It is sampled by the subsystem that owns
// the queue — sim cannot import metrics — and carries no time of its
// own, so recording into one never perturbs a trace.
type Gauge struct {
	cur   int
	max   int
	bound int // 0 = unbounded
}

// NewGauge returns a gauge with the given bound (0 = unbounded).
func NewGauge(bound int) *Gauge { return &Gauge{bound: bound} }

// Set records the current depth, updating the high-watermark.
func (g *Gauge) Set(v int) {
	g.cur = v
	if v > g.max {
		g.max = v
	}
}

// Inc adds one to the current depth.
func (g *Gauge) Inc() { g.Set(g.cur + 1) }

// Dec subtracts one from the current depth (floored at 0).
func (g *Gauge) Dec() {
	if g.cur > 0 {
		g.cur--
	}
}

// Cur returns the current depth.
func (g *Gauge) Cur() int { return g.cur }

// Max returns the high-watermark.
func (g *Gauge) Max() int { return g.max }

// Bound returns the configured bound (0 = unbounded).
func (g *Gauge) Bound() int { return g.bound }

// Exceeded reports whether the high-watermark ever passed the bound.
func (g *Gauge) Exceeded() bool { return g.bound > 0 && g.max > g.bound }

// Sorted returns sorted copies of keys for deterministic map iteration in
// reports.
func Sorted[K ~string](m map[K]uint64) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
