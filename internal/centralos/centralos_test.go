package centralos

import (
	"fmt"
	"testing"

	"nocpu/internal/bus"
	"nocpu/internal/device"
	"nocpu/internal/interconnect"
	"nocpu/internal/iommu"
	"nocpu/internal/kvs"
	"nocpu/internal/msg"
	"nocpu/internal/physmem"
	"nocpu/internal/sim"
	"nocpu/internal/smartnic"
	"nocpu/internal/smartssd"
	"nocpu/internal/trace"
)

const (
	cpuID = msg.DeviceID(1)
	ssdID = msg.DeviceID(2)
	nicID = msg.DeviceID(3)
)

type centralbed struct {
	eng   *sim.Engine
	bus   *bus.Bus
	cpu   *CPU
	ssd   *smartssd.SSD
	nic   *smartnic.NIC
	store *kvs.Store
}

func newCentralbed(t *testing.T, mode kvs.Mode) *centralbed {
	t.Helper()
	cb := &centralbed{eng: sim.NewEngine()}
	tr := trace.New(0)
	mem := physmem.MustNew(32 * 1024 * physmem.PageSize)
	fab := interconnect.NewFabric(cb.eng, mem, interconnect.DefaultCosts)
	// No memory controller attaches: the bus is pure transport here.
	cb.bus = bus.New(cb.eng, bus.DefaultConfig, tr)

	cpu, err := New(cb.eng, cb.bus, fab, tr, Config{ID: cpuID, Name: "cpu"})
	if err != nil {
		t.Fatal(err)
	}
	cb.cpu = cpu
	ssd, err := smartssd.New(cb.eng, cb.bus, fab, tr, smartssd.Config{
		Device: device.Config{ID: ssdID, Name: "ssd"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cb.ssd = ssd
	nic, err := smartnic.New(cb.eng, cb.bus, fab, tr, smartnic.Config{
		Device: device.Config{ID: nicID, Name: "nic"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cb.nic = nic

	// The kernel holds direct handles to the device IOMMUs and mounts
	// the volume into its registry.
	cpu.AttachDeviceIOMMU(ssdID, ssd.Device().IOMMU())
	cpu.AttachDeviceIOMMU(nicID, nic.Device().IOMMU())
	cpu.RegisterFile("kv.dat", ssdID)

	cpu.Start()
	ssd.Start()
	nic.Start()
	cb.eng.Run()
	if !ssd.Ready() {
		t.Fatal("ssd not ready")
	}
	var done bool
	ssd.FS().Create("kv.dat", func(_ *smartssd.File, err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	})
	cb.eng.Run()
	if !done {
		t.Fatal("create incomplete")
	}

	cb.store = kvs.New(kvs.Config{
		App: 10, FileName: "kv.dat", Mode: mode, Kernel: cpuID, QueueEntries: 64,
	})
	var bootErr error
	booted := false
	cb.store.OnReady = func(err error) { bootErr, booted = err, true }
	nic.AddApp(cb.store)
	cb.eng.Run()
	if !booted || bootErr != nil {
		t.Fatalf("boot (mode %d): booted=%v err=%v\ntrace:\n%s", mode, booted, bootErr, tr.String())
	}
	return cb
}

func (cb *centralbed) op(t *testing.T, req kvs.Request) kvs.Response {
	t.Helper()
	var resp kvs.Response
	got := false
	cb.nic.Deliver(10, kvs.EncodeRequest(req), func(b []byte) {
		r, err := kvs.DecodeResponse(b)
		if err != nil {
			t.Fatal(err)
		}
		resp, got = r, true
	})
	cb.eng.Run()
	if !got {
		t.Fatal("no response")
	}
	return resp
}

func TestCentralDirectPutGet(t *testing.T) {
	cb := newCentralbed(t, kvs.ModeCentralDirect)
	if r := cb.op(t, kvs.Request{Op: kvs.OpPut, Key: "k", Value: []byte("central-direct")}); r.Status != kvs.StatusOK {
		t.Fatalf("put: %+v", r)
	}
	r := cb.op(t, kvs.Request{Op: kvs.OpGet, Key: "k"})
	if r.Status != kvs.StatusOK || string(r.Value) != "central-direct" {
		t.Fatalf("get: %+v", r)
	}
	st := cb.cpu.Stats()
	if st.Syscalls < 2 {
		t.Errorf("setup made only %d syscalls", st.Syscalls)
	}
	// Direct mode: data-plane ops must NOT be syscalls.
	if st.MediatedIOs != 0 {
		t.Errorf("direct mode performed %d mediated I/Os", st.MediatedIOs)
	}
	if st.PagesMapped == 0 {
		t.Error("kernel mapped no pages")
	}
}

func TestCentralMediatedPutGet(t *testing.T) {
	cb := newCentralbed(t, kvs.ModeCentralMediated)
	if r := cb.op(t, kvs.Request{Op: kvs.OpPut, Key: "k", Value: []byte("via-kernel")}); r.Status != kvs.StatusOK {
		t.Fatalf("put: %+v", r)
	}
	r := cb.op(t, kvs.Request{Op: kvs.OpGet, Key: "k"})
	if r.Status != kvs.StatusOK || string(r.Value) != "via-kernel" {
		t.Fatalf("get: %+v", r)
	}
	st := cb.cpu.Stats()
	if st.MediatedIOs < 2 {
		t.Errorf("mediated I/Os = %d, want >= 2", st.MediatedIOs)
	}
	if st.BytesCopied == 0 {
		t.Error("kernel copied nothing")
	}
	if st.Interrupts == 0 {
		t.Error("no completion interrupts")
	}
}

func TestMediatedSlowerThanDirect(t *testing.T) {
	// The headline shape: per-op latency must be strictly higher through
	// the kernel than peer-to-peer, by roughly the syscall+interrupt+copy
	// overhead.
	measure := func(mode kvs.Mode) sim.Duration {
		cb := newCentralbed(t, mode)
		cb.op(t, kvs.Request{Op: kvs.OpPut, Key: "k", Value: make([]byte, 1024)})
		start := cb.eng.Now()
		const n = 20
		for i := 0; i < n; i++ {
			cb.op(t, kvs.Request{Op: kvs.OpGet, Key: "k"})
		}
		return cb.eng.Now().Sub(start) / n
	}
	direct := measure(kvs.ModeCentralDirect)
	mediated := measure(kvs.ModeCentralMediated)
	if mediated <= direct {
		t.Fatalf("mediated (%v) not slower than direct (%v)", mediated, direct)
	}
	if mediated-direct < 2*sim.Microsecond {
		t.Errorf("mediation overhead only %v, expected >= ~2us (syscall+interrupt)", mediated-direct)
	}
}

func TestOpenUnregisteredFileFails(t *testing.T) {
	cb := newCentralbed(t, kvs.ModeCentralDirect)
	st2 := kvs.New(kvs.Config{App: 11, FileName: "nope.dat", Mode: kvs.ModeCentralDirect, Kernel: cpuID})
	var bootErr error
	st2.OnReady = func(err error) {
		if bootErr == nil {
			bootErr = err
		}
	}
	cb.nic.AddApp(st2)
	cb.eng.RunFor(5 * sim.Millisecond)
	if bootErr == nil {
		t.Fatal("open of unregistered file succeeded")
	}
}

func TestMediatedManyKeys(t *testing.T) {
	cb := newCentralbed(t, kvs.ModeCentralMediated)
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("key%02d", i)
		if r := cb.op(t, kvs.Request{Op: kvs.OpPut, Key: key, Value: []byte(key + "-value")}); r.Status != kvs.StatusOK {
			t.Fatalf("put %d: %+v", i, r)
		}
	}
	for i := 0; i < 30; i += 5 {
		key := fmt.Sprintf("key%02d", i)
		r := cb.op(t, kvs.Request{Op: kvs.OpGet, Key: key})
		if r.Status != kvs.StatusOK || string(r.Value) != key+"-value" {
			t.Fatalf("get %s: %+v", key, r)
		}
	}
}

func TestKernelMmapSyscall(t *testing.T) {
	cb := newCentralbed(t, kvs.ModeCentralDirect)
	nicDev := cb.nic.Device()
	var alloc *msg.AllocResp
	var free *msg.FreeResp
	nicDev.Handle(msg.KindAllocResp, func(e msg.Envelope) { alloc = e.Msg.(*msg.AllocResp) })
	nicDev.Handle(msg.KindFreeResp, func(e msg.Envelope) { free = e.Msg.(*msg.FreeResp) })

	nicDev.Send(cpuID, &msg.AllocReq{App: 50, VA: 0x4000_0000, Bytes: 3 * physmem.PageSize})
	cb.eng.Run()
	if alloc == nil || !alloc.OK || len(alloc.Frames) != 3 {
		t.Fatalf("mmap: %+v", alloc)
	}
	// The kernel mapped the region into the caller's IOMMU.
	for i := 0; i < 3; i++ {
		if _, _, ok := nicDev.IOMMU().Lookup(50, iommu.VirtAddr(0x4000_0000+i*physmem.PageSize)); !ok {
			t.Fatalf("page %d not mapped", i)
		}
	}
	// Duplicate mmap of the same region is refused.
	alloc = nil
	nicDev.Send(cpuID, &msg.AllocReq{App: 50, VA: 0x4000_0000, Bytes: physmem.PageSize})
	cb.eng.Run()
	if alloc == nil || alloc.OK {
		t.Fatalf("duplicate mmap: %+v", alloc)
	}
	// Malformed requests are refused.
	alloc = nil
	nicDev.Send(cpuID, &msg.AllocReq{App: 50, VA: 0x4000_1001, Bytes: physmem.PageSize})
	cb.eng.Run()
	if alloc == nil || alloc.OK {
		t.Fatalf("unaligned mmap: %+v", alloc)
	}
	// munmap removes the mapping and frees the frames.
	nicDev.Send(cpuID, &msg.FreeReq{App: 50, VA: 0x4000_0000})
	cb.eng.Run()
	if free == nil || !free.OK {
		t.Fatalf("munmap: %+v", free)
	}
	if _, _, ok := nicDev.IOMMU().Lookup(50, 0x4000_0000); ok {
		t.Fatal("mapping survives munmap")
	}
	// Double munmap refused.
	free = nil
	nicDev.Send(cpuID, &msg.FreeReq{App: 50, VA: 0x4000_0000})
	cb.eng.Run()
	if free == nil || free.OK {
		t.Fatalf("double munmap: %+v", free)
	}
}

func TestKernelMmapChargesCPUTime(t *testing.T) {
	cb := newCentralbed(t, kvs.ModeCentralDirect)
	nicDev := cb.nic.Device()
	done := false
	nicDev.Handle(msg.KindAllocResp, func(e msg.Envelope) { done = true })
	start := cb.eng.Now()
	nicDev.Send(cpuID, &msg.AllocReq{App: 60, VA: 0x5000_0000, Bytes: 64 * physmem.PageSize})
	cb.eng.Run()
	if !done {
		t.Fatal("no response")
	}
	// Must include at least syscall + 64 pages of mmap work.
	minWork := DefaultConfig.SyscallCost + 64*DefaultConfig.MmapPerPage
	if got := cb.eng.Now().Sub(start); got < minWork {
		t.Fatalf("mmap took %v, below kernel work %v", got, minWork)
	}
}

func TestKernelSerializesUnderLoad(t *testing.T) {
	// Issue a burst of opens from many apps; the pool has 4 cores, so the
	// kernel must still answer all of them (queued), and syscall count
	// must match.
	cb := newCentralbed(t, kvs.ModeCentralDirect)
	const apps = 16
	ready := 0
	for i := 0; i < apps; i++ {
		st := kvs.New(kvs.Config{
			App: msg.AppID(100 + i), FileName: "kv.dat",
			Mode: kvs.ModeCentralDirect, Kernel: cpuID, QueueEntries: 16,
		})
		st.OnReady = func(err error) {
			if err == nil {
				ready++
			}
		}
		cb.nic.AddApp(st)
	}
	cb.eng.Run()
	if ready != apps {
		t.Fatalf("ready = %d of %d", ready, apps)
	}
}
