// Package centralos is the comparison baseline: the same machine, but
// with a general-purpose CPU running a kernel as the centralized control
// plane — the Omni-X / M3X / IX configuration the paper positions itself
// against, and the "traditional stack" beyond that.
//
// The CPU attaches to the same transport and devices as the decentralized
// machine. Differences:
//
//   - There is no memory-controller device and the bus performs no
//     privileged work: the kernel holds direct handles to every device
//     IOMMU (as a kernel does, via MMIO) and programs them itself.
//   - Applications make syscalls (messages to the CPU) for every control
//     operation: open, mmap+grant (folded into open), connect, close.
//     Each syscall costs a trap + dispatch and occupies a CPU core.
//   - Service discovery is a kernel registry lookup — centralized state
//     instead of broadcast.
//
// Two data-path modes are supported:
//
//   - Direct (Omni-X style): after setup, the app's virtqueue runs
//     peer-to-peer; only the control plane is centralized.
//   - Mediated (traditional stack): the kernel owns the device queue and
//     every file I/O is a FileIOReq syscall, paying trap, kernel work,
//     copy, and completion-interrupt costs.
package centralos

import (
	"fmt"
	"sort"

	"nocpu/internal/bus"
	"nocpu/internal/interconnect"
	"nocpu/internal/iommu"
	"nocpu/internal/metrics"
	"nocpu/internal/msg"
	"nocpu/internal/physmem"
	"nocpu/internal/sim"
	"nocpu/internal/smartssd"
	"nocpu/internal/trace"
	"nocpu/internal/virtio"
)

// Config tunes the CPU and kernel cost model.
type Config struct {
	ID    msg.DeviceID
	Name  string
	Cores int
	// SyscallCost is trap + kernel entry/exit + dispatch.
	SyscallCost sim.Duration
	// RegistryCost is a kernel name-table lookup.
	RegistryCost sim.Duration
	// MmapPerPage is kernel frame allocation + one IOMMU PTE store.
	MmapPerPage sim.Duration
	// InterruptCost is a device-completion interrupt (kernel-mediated
	// I/O pays one per completion).
	InterruptCost sim.Duration
	// CopyBytesPerNs is kernel memcpy bandwidth for mediated I/O.
	CopyBytesPerNs float64
	// QueueEntries sizes the kernel's own device queues.
	QueueEntries uint16
	IOMMU        iommu.Config
	// HeartbeatEvery makes the kernel heartbeat on the management
	// transport, so a bus watchdog can detect a kernel panic. 0 (the
	// default) sends none — required for machines without a watchdog.
	HeartbeatEvery sim.Duration
	// ResetDelay is the kernel reboot time after a bus Reset (the
	// baseline's recovery path). 0 disables recovery: a Reset is ignored.
	ResetDelay sim.Duration
	// IOBacklogBound caps mediated file I/Os in flight inside the kernel
	// (admitted by sysFileIO but not yet completed). At the bound new
	// I/Os are rejected with StatusBusy instead of queueing without
	// limit on the syscall cores. 0 = unbounded, the legacy behavior.
	IOBacklogBound int
}

// DefaultConfig models a competent kernel on a server CPU.
var DefaultConfig = Config{
	Cores:          4,
	SyscallCost:    1500 * sim.Nanosecond,
	RegistryCost:   300 * sim.Nanosecond,
	MmapPerPage:    250 * sim.Nanosecond,
	InterruptCost:  1000 * sim.Nanosecond,
	CopyBytesPerNs: 8,
	QueueEntries:   128,
}

// Stats counts kernel activity.
type Stats struct {
	Syscalls    uint64
	MediatedIOs uint64
	Interrupts  uint64
	PagesMapped uint64
	BytesCopied uint64
	Reboots     uint64
	// IOShed counts mediated I/Os refused with StatusBusy at the
	// IOBacklogBound.
	IOShed uint64
}

// CPU is the kernel device.
type CPU struct {
	eng  *sim.Engine
	cfg  Config
	tr   *trace.Tracer
	port *bus.Port
	dma  *interconnect.Port
	mmu  *iommu.IOMMU
	mem  *physmem.Memory

	cores *sim.Pool

	// iommus are the kernel's direct MMIO handles to device IOMMUs.
	iommus map[msg.DeviceID]*iommu.IOMMU
	// registry maps file names to the storage device holding them (the
	// kernel's mount table).
	registry map[string]msg.DeviceID

	// appVA is the kernel's per-app mmap pointer.
	appVA map[msg.AppID]uint64

	pendingOpen    map[openKey]*openState
	pendingConnect map[uint32]func(*msg.ConnectResp) // connID -> continuation
	kernelConns    map[uint32]*kernelFile            // mediated handles
	nextHandle     uint32

	// ioOutstanding counts mediated I/Os admitted by sysFileIO and not
	// yet completed; ioG tracks it against IOBacklogBound (Q1 audit).
	ioOutstanding int
	ioG           *metrics.Gauge

	// completedOpens is the kernel's at-most-once cache for the open
	// syscall: a retransmitted OpenReq (lost response) replays the recorded
	// verdict instead of re-running mmap/grant and leaking a second region.
	// The verdict keeps the origin NIC so the kernel can push ErrorNotify
	// to affected apps when the backing device dies.
	completedOpens map[openKey]*openVerdict

	helloTimer *sim.Timer
	helloTries int
	hbTimer    *sim.Timer
	hbSeq      uint64
	alive      bool

	// mmaps is the kernel's per-app region table for the explicit
	// mmap/munmap syscalls (AllocReq/FreeReq addressed to the CPU).
	mmaps map[mmapKey]mmapRec

	stats Stats
}

type openKey struct {
	app     msg.AppID
	service string
}

type openState struct {
	origin   msg.DeviceID
	service  string // the service name the app used
	mediated bool
	token    uint64
}

// openVerdict is a completed open: the cached response plus the NIC it
// was delivered to.
type openVerdict struct {
	resp   *msg.OpenResp
	origin msg.DeviceID
}

// kernelFile is the kernel's own connection to a device file (mediated
// mode): the queue's driver half lives on the CPU.
type kernelFile struct {
	handle uint32
	app    msg.AppID
	dev    msg.DeviceID // the device serving the queue
	drv    *virtio.Driver
	// At-most-once execution for mediated I/O (§4): completed caches
	// recent responses by syscall seq so a retransmitted FileIOReq replays
	// the result instead of re-applying the write; inflight suppresses
	// duplicates of a request still in the device queue.
	completed map[uint32]*msg.FileIOResp
	inflight  map[uint32]bool
}

// ioWindow bounds the completed-response cache per handle; app seqs are
// monotonic, so anything this far behind can no longer be retransmitted.
const ioWindow = 256

// New builds the CPU and attaches it to the bus and fabric.
func New(eng *sim.Engine, b *bus.Bus, fab *interconnect.Fabric, tr *trace.Tracer, cfg Config) (*CPU, error) {
	if cfg.Cores <= 0 {
		cfg.Cores = DefaultConfig.Cores
	}
	if cfg.SyscallCost == 0 {
		cfg.SyscallCost = DefaultConfig.SyscallCost
	}
	if cfg.RegistryCost == 0 {
		cfg.RegistryCost = DefaultConfig.RegistryCost
	}
	if cfg.MmapPerPage == 0 {
		cfg.MmapPerPage = DefaultConfig.MmapPerPage
	}
	if cfg.InterruptCost == 0 {
		cfg.InterruptCost = DefaultConfig.InterruptCost
	}
	if cfg.CopyBytesPerNs == 0 {
		cfg.CopyBytesPerNs = DefaultConfig.CopyBytesPerNs
	}
	if cfg.QueueEntries == 0 {
		cfg.QueueEntries = DefaultConfig.QueueEntries
	}
	c := &CPU{
		eng:            eng,
		cfg:            cfg,
		tr:             tr,
		mem:            fab.Memory(),
		mmu:            iommu.New(cfg.Name, fab.Memory(), cfg.IOMMU),
		cores:          sim.NewPool(eng, cfg.Cores),
		iommus:         make(map[msg.DeviceID]*iommu.IOMMU),
		registry:       make(map[string]msg.DeviceID),
		appVA:          make(map[msg.AppID]uint64),
		pendingOpen:    make(map[openKey]*openState),
		pendingConnect: make(map[uint32]func(*msg.ConnectResp)),
		kernelConns:    make(map[uint32]*kernelFile),
		mmaps:          make(map[mmapKey]mmapRec),
		completedOpens: make(map[openKey]*openVerdict),
		ioG:            metrics.NewGauge(cfg.IOBacklogBound),
	}
	c.dma = fab.NewPort(cfg.Name, c.mmu)
	port, err := b.Attach(cfg.ID, cfg.Name, msg.RoleAccelerator, c.mmu, c.receive)
	if err != nil {
		return nil, err
	}
	c.port = port
	return c, nil
}

// Start boots the kernel (announces the CPU on the transport). The Hello
// retransmits with backoff until the bus acknowledges it (§4: enrollment
// must survive a lossy bus); the timer never fires in a fault-free run.
func (c *CPU) Start() {
	c.alive = true
	c.helloTries = 0
	c.sendHello()
	c.scheduleHeartbeat()
}

const (
	helloRetryBase = 2 * sim.Millisecond
	helloRetryMax  = 5
)

func (c *CPU) sendHello() {
	c.port.Send(msg.BusID, &msg.Hello{Role: msg.RoleAccelerator, Name: c.cfg.Name, Incarnation: c.port.Incarnation()})
	if c.helloTries >= helloRetryMax {
		c.tr.Record(c.eng.Now(), c.cfg.Name, "", "hello-abandoned", fmt.Sprintf("after %d attempts", c.helloTries+1))
		return
	}
	delay := helloRetryBase << uint(c.helloTries)
	c.helloTries++
	c.helloTimer = c.eng.After(delay, c.sendHello)
}

// Stats returns a copy of the counters.
func (c *CPU) Stats() Stats { return c.stats }

// IOGauge exposes mediated-I/O backlog depth vs IOBacklogBound
// (overload Q1 audit).
func (c *CPU) IOGauge() *metrics.Gauge { return c.ioG }

// Alive reports whether the kernel is running.
func (c *CPU) Alive() bool { return c.alive }

// scheduleHeartbeat arms the kernel's liveness beacon when configured.
func (c *CPU) scheduleHeartbeat() {
	if c.cfg.HeartbeatEvery <= 0 {
		return
	}
	c.hbTimer = c.eng.After(c.cfg.HeartbeatEvery, func() {
		if !c.alive {
			return
		}
		c.hbSeq++
		c.port.Send(msg.BusID, &msg.Heartbeat{Seq: c.hbSeq})
		c.scheduleHeartbeat()
	})
}

// Kill simulates a kernel panic (fault injection): the CPU stops
// answering syscalls and heartbeats until the bus watchdog resets it.
func (c *CPU) Kill() {
	c.alive = false
	if c.helloTimer != nil {
		c.helloTimer.Stop()
		c.helloTimer = nil
	}
	if c.hbTimer != nil {
		c.hbTimer.Stop()
		c.hbTimer = nil
	}
}

// onBusReset runs the baseline's recovery: after ResetDelay the kernel
// reboots with a new incarnation.
func (c *CPU) onBusReset(m *msg.Reset) {
	if c.cfg.ResetDelay <= 0 {
		// No recovery path configured (the pre-crash-work machines).
		return
	}
	c.Kill()
	c.eng.After(c.cfg.ResetDelay, c.reboot)
}

// reboot is the kernel's crash-recovery path — and the baseline's
// structural weakness the paper argues against (§2.3: the kernel is a
// single point of failure). Everything the kernel held in RAM is gone:
// syscall continuations, mediated queues, the at-most-once open cache,
// the per-app region and mmap tables. Reinitializing the translation
// units it drives (as a booting kernel must) tears down every live
// context, so even direct-mode data planes that never touched the CPU die
// with it and every application reconnects from scratch. Contrast with
// the decentralized machine, where a device crash is contained to that
// device's resources. Physical frames reachable only through the lost
// tables leak until a full power cycle; the reproduction accepts that
// (bounded by crashes per run) rather than pretending the kernel can
// recover state it no longer has.
func (c *CPU) reboot() {
	c.port.NewIncarnation()
	for _, id := range c.sortedIOMMUs() {
		flushContexts(c.iommus[id])
	}
	flushContexts(c.mmu)
	for _, h := range c.sortedHandles() {
		c.kernelConns[h].drv.Quiesce()
	}
	c.kernelConns = make(map[uint32]*kernelFile)
	c.pendingOpen = make(map[openKey]*openState)
	c.pendingConnect = make(map[uint32]func(*msg.ConnectResp))
	c.completedOpens = make(map[openKey]*openVerdict)
	c.mmaps = make(map[mmapKey]mmapRec)
	c.appVA = make(map[msg.AppID]uint64)
	c.stats.Reboots++
	c.tr.Record(c.eng.Now(), c.cfg.Name, "", "kernel.reboot", fmt.Sprintf("inc=%d", c.port.Incarnation()))
	c.alive = true
	c.helloTries = 0
	c.sendHello()
	c.scheduleHeartbeat()
}

// flushContexts destroys every live PASID context on one unit.
func flushContexts(u *iommu.IOMMU) {
	for _, p := range u.PASIDs() {
		_ = u.DestroyContext(p)
	}
}

func (c *CPU) sortedIOMMUs() []msg.DeviceID {
	ids := make([]msg.DeviceID, 0, len(c.iommus))
	for id := range c.iommus {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (c *CPU) sortedHandles() []uint32 {
	hs := make([]uint32, 0, len(c.kernelConns))
	for h := range c.kernelConns {
		hs = append(hs, h)
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	return hs
}

func (c *CPU) sortedOpenKeys(m map[openKey]*openState) []openKey {
	ks := make([]openKey, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sortOpenKeys(ks)
	return ks
}

func (c *CPU) sortedCompletedKeys() []openKey {
	ks := make([]openKey, 0, len(c.completedOpens))
	for k := range c.completedOpens {
		ks = append(ks, k)
	}
	sortOpenKeys(ks)
	return ks
}

func sortOpenKeys(ks []openKey) {
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].app != ks[j].app {
			return ks[i].app < ks[j].app
		}
		return ks[i].service < ks[j].service
	})
}

// AttachDeviceIOMMU gives the kernel its MMIO handle to a device's
// translation unit.
func (c *CPU) AttachDeviceIOMMU(id msg.DeviceID, mmu *iommu.IOMMU) {
	c.iommus[id] = mmu
}

// Misprogram models a compromised (or merely buggy) kernel: it maps the
// app's pages straight into the named device's translation unit, no
// authorization asked. In the centralized architecture the kernel IS
// the authorization, so nothing stands in the way; on a machine whose
// devices carry per-device isolation domains (core.Options.Tenancy),
// the device's own IOMMU refuses the foreign context and the returned
// error is the typed refusal. E20's compromised-kernel cell measures
// exactly this difference in blast radius.
func (c *CPU) Misprogram(dev msg.DeviceID, app msg.AppID, va, bytes uint64) error {
	mmu, ok := c.iommus[dev]
	if !ok {
		return fmt.Errorf("centralos: no iommu handle for device %d", dev)
	}
	_, err := c.mapRegion(app, va, bytes, []*iommu.IOMMU{mmu})
	return err
}

// RegisterFile mounts a file into the kernel's registry.
func (c *CPU) RegisterFile(name string, dev msg.DeviceID) {
	c.registry[name] = dev
}

// receive handles all traffic addressed to the CPU.
func (c *CPU) receive(env msg.Envelope) {
	if r, ok := env.Msg.(*msg.Reset); ok {
		// A Reset reaches even a dead CPU (the bus lets it through so the
		// watchdog can revive what it failed).
		c.onBusReset(r)
		return
	}
	if !c.alive {
		// A panicked kernel answers nothing; requesters retry until the
		// reboot completes.
		return
	}
	switch m := env.Msg.(type) {
	case *msg.OpenReq:
		c.sysOpen(env.Src, m)
	case *msg.OpenResp:
		c.onDeviceOpenResp(env.Src, m)
	case *msg.ConnectReq:
		c.sysConnect(env.Src, m)
	case *msg.ConnectResp:
		c.onDeviceConnectResp(env.Src, m)
	case *msg.CloseReq:
		c.sysClose(env.Src, m)
	case *msg.FileIOReq:
		c.sysFileIO(env.Src, m)
	case *msg.AllocReq:
		c.sysMmap(env.Src, m)
	case *msg.FreeReq:
		c.sysMunmap(env.Src, m)
	case *msg.HelloAck:
		if c.helloTimer != nil {
			c.helloTimer.Stop()
			c.helloTimer = nil
		}
	case *msg.DeviceFailed:
		c.onPeerFailed(m.Device)
	case *msg.CreditUpdate:
		// Flow-control replenishment: pure port plumbing.
		c.port.AddCredits(m.Credits, m.ForInc)
	}
}

// onPeerFailed purges kernel state involving a dead device. Open flows
// waiting on it are dropped (the app's retrier re-runs them after the
// device recovers); mediated queues into it are quiesced, and the
// at-most-once open cache forgets verdicts that named it so a post-reset
// reopen re-runs the real work instead of replaying a dead connection.
func (c *CPU) onPeerFailed(dev msg.DeviceID) {
	for _, k := range c.sortedOpenKeys(c.pendingOpen) {
		if st := c.pendingOpen[k]; st.origin == dev {
			delete(c.pendingOpen, k)
		}
	}
	for _, k := range c.sortedCompletedKeys() {
		v := c.completedOpens[k]
		name := v.resp.Service
		mediated := false
		if n, ok := cutPrefix(name, "mediated:"); ok {
			name, mediated = n, true
		} else if n, ok := cutPrefix(name, "file:"); ok {
			name = n
		}
		if v.origin == dev {
			// The consumer's NIC died: after its reboot the app's reopen
			// is a genuinely new open (new rings, new doorbells), not a
			// retransmission, so the cached verdict must not replay.
			delete(c.completedOpens, k)
			if kf, ok := c.kernelConns[v.resp.ConnID]; mediated && ok && kf.app == k.app {
				kf.drv.Quiesce()
				delete(c.kernelConns, v.resp.ConnID)
			}
			continue
		}
		if c.registry[name] == dev {
			delete(c.completedOpens, k)
			// §4: tell the consumer its resource died. The app's runtime
			// cannot see this itself — its file handle names the kernel,
			// not the storage device behind it.
			c.port.Send(v.origin, &msg.ErrorNotify{
				App: k.app, Resource: v.resp.Service, Code: 1,
				Detail: fmt.Sprintf("device %d serving %q failed", dev, name),
			})
		}
	}
	// Mediated handles ride kernel→device queues; when the device died the
	// endpoint half is gone for good (it drops connections on reset).
	for _, h := range c.sortedHandles() {
		kf := c.kernelConns[h]
		if kf.dev != dev {
			continue
		}
		kf.drv.Quiesce()
		delete(c.kernelConns, h)
	}
}

// mapRegion allocates frames and maps them into the given device IOMMUs
// under the app's PASID, charging kernel time on a core. Returns the
// number of pages or an error.
func (c *CPU) mapRegion(app msg.AppID, va uint64, bytes uint64, mmus []*iommu.IOMMU) (int, error) {
	pages := int((bytes + physmem.PageSize - 1) / physmem.PageSize)
	pasid := iommu.PASID(app)
	frames := make([]physmem.Frame, 0, pages)
	for i := 0; i < pages; i++ {
		f, err := c.mem.AllocFrames(1)
		if err != nil {
			for _, ff := range frames {
				_ = c.mem.FreeFrames(ff, 1)
			}
			return 0, err
		}
		frames = append(frames, f)
	}
	for _, mmu := range mmus {
		if !mmu.HasContext(pasid) {
			if err := mmu.CreateContext(pasid); err != nil {
				return 0, err
			}
		}
		for i, f := range frames {
			if err := mmu.Map(pasid, iommu.VirtAddr(va+uint64(i)*physmem.PageSize), f, iommu.PermRW); err != nil {
				return 0, err
			}
		}
	}
	c.stats.PagesMapped += uint64(pages * len(mmus))
	return pages, nil
}

// vaFor advances the app's mmap pointer.
func (c *CPU) vaFor(app msg.AppID, bytes uint64) uint64 {
	va, ok := c.appVA[app]
	if !ok {
		va = 0x2000_0000
	}
	pages := (bytes + physmem.PageSize - 1) / physmem.PageSize
	c.appVA[app] = va + (pages+1)*physmem.PageSize
	return va
}

// sysOpen handles the open syscall, both direct ("file:X") and mediated
// ("mediated:X").
func (c *CPU) sysOpen(src msg.DeviceID, m *msg.OpenReq) {
	c.stats.Syscalls++
	c.cores.Submit(c.cfg.SyscallCost+c.cfg.RegistryCost, func() {
		if done, ok := c.completedOpens[openKey{m.App, m.Service}]; ok {
			// Retransmitted open (lost response): replay the recorded
			// verdict rather than mmap a second region.
			resp := *done.resp
			c.port.Send(src, &resp)
			return
		}
		mediated := false
		name := m.Service
		if n, ok := cutPrefix(name, "mediated:"); ok {
			mediated = true
			name = n
		} else if n, ok := cutPrefix(name, "file:"); ok {
			name = n
		} else {
			c.port.Send(src, &msg.OpenResp{Service: m.Service, App: m.App, OK: false, Reason: "unknown service class"})
			return
		}
		dev, ok := c.registry[name]
		if !ok {
			c.port.Send(src, &msg.OpenResp{Service: m.Service, App: m.App, OK: false, Reason: "no such file in registry"})
			return
		}
		c.pendingOpen[openKey{m.App, "file:" + name}] = &openState{
			origin: src, service: m.Service, mediated: mediated, token: m.Token,
		}
		c.port.Send(dev, &msg.OpenReq{Service: "file:" + name, App: m.App, Token: m.Token})
	})
}

// onDeviceOpenResp continues an open after the device answered the
// kernel.
func (c *CPU) onDeviceOpenResp(dev msg.DeviceID, m *msg.OpenResp) {
	st, ok := c.pendingOpen[openKey{m.App, m.Service}]
	if !ok {
		return
	}
	delete(c.pendingOpen, openKey{m.App, m.Service})
	if !m.OK {
		c.port.Send(st.origin, &msg.OpenResp{Service: st.service, App: m.App, OK: false, Reason: m.Reason})
		return
	}
	if st.mediated {
		c.openMediated(dev, st, m)
		return
	}
	// Direct mode: kernel performs the mmap + grant in one step, mapping
	// the region into both the app's device and the provider.
	cellSize := cellSizeFromQuote(m.SharedBytes, 128)
	lay := virtio.NewLayout(0, c.cfg.QueueEntries, cellSize)
	bytes := uint64(lay.DataVA) + uint64(lay.DataBytes())
	va := c.vaFor(m.App, bytes)
	appMMU, ok1 := c.iommus[st.origin]
	devMMU, ok2 := c.iommus[dev]
	if !ok1 || !ok2 {
		c.port.Send(st.origin, &msg.OpenResp{Service: st.service, App: m.App, OK: false, Reason: "kernel has no IOMMU handle"})
		return
	}
	pages := int((bytes + physmem.PageSize - 1) / physmem.PageSize)
	c.cores.Submit(sim.Duration(2*pages)*c.cfg.MmapPerPage, func() {
		if _, err := c.mapRegion(m.App, va, bytes, []*iommu.IOMMU{appMMU, devMMU}); err != nil {
			c.port.Send(st.origin, &msg.OpenResp{Service: st.service, App: m.App, OK: false, Reason: err.Error()})
			return
		}
		resp := &msg.OpenResp{
			Service: st.service, App: m.App, OK: true,
			ConnID: m.ConnID, SharedBytes: m.SharedBytes, Base: va,
		}
		c.completedOpens[openKey{m.App, st.service}] = &openVerdict{resp: resp, origin: st.origin}
		out := *resp
		c.port.Send(st.origin, &out)
	})
}

// sysConnect forwards a direct-mode connect syscall to the provider.
func (c *CPU) sysConnect(src msg.DeviceID, m *msg.ConnectReq) {
	c.stats.Syscalls++
	c.cores.Submit(c.cfg.SyscallCost, func() {
		name, ok := cutPrefix(m.Service, "file:")
		if !ok {
			c.port.Send(src, &msg.ConnectResp{ConnID: m.ConnID, OK: false, Reason: "unknown service class"})
			return
		}
		dev, ok := c.registry[name]
		if !ok {
			c.port.Send(src, &msg.ConnectResp{ConnID: m.ConnID, OK: false, Reason: "no such file"})
			return
		}
		c.pendingConnect[m.ConnID] = func(cr *msg.ConnectResp) {
			fwd := *cr
			c.port.Send(src, &fwd)
		}
		fwd := *m
		c.port.Send(dev, &fwd)
	})
}

// onDeviceConnectResp dispatches the provider's answer to whichever open
// flow is waiting (app forward or kernel mediated setup).
func (c *CPU) onDeviceConnectResp(dev msg.DeviceID, m *msg.ConnectResp) {
	cont, ok := c.pendingConnect[m.ConnID]
	if !ok {
		return
	}
	delete(c.pendingConnect, m.ConnID)
	cont(m)
}

// sysClose forwards a close syscall.
func (c *CPU) sysClose(src msg.DeviceID, m *msg.CloseReq) {
	c.stats.Syscalls++
	c.cores.Submit(c.cfg.SyscallCost, func() {
		if kf, ok := c.kernelConns[m.ConnID]; ok {
			delete(c.kernelConns, m.ConnID)
			_ = kf
			c.port.Send(src, &msg.CloseResp{ConnID: m.ConnID, OK: true})
			return
		}
		name, _ := cutPrefix(m.Service, "file:")
		if dev, ok := c.registry[name]; ok {
			fwd := *m
			c.port.Send(dev, &fwd)
			// Fire-and-forget: the provider's CloseResp returns to the
			// kernel and is dropped; the app's close is acknowledged
			// here.
		}
		c.port.Send(src, &msg.CloseResp{ConnID: m.ConnID, OK: true})
	})
}

// openMediated builds the kernel's own queue to the device.
func (c *CPU) openMediated(dev msg.DeviceID, st *openState, m *msg.OpenResp) {
	devMMU, ok := c.iommus[dev]
	if !ok {
		c.port.Send(st.origin, &msg.OpenResp{Service: st.service, App: m.App, OK: false, Reason: "kernel has no IOMMU handle"})
		return
	}
	cellSize := cellSizeFromQuote(m.SharedBytes, 128)
	lay0 := virtio.NewLayout(0, c.cfg.QueueEntries, cellSize)
	bytes := uint64(lay0.DataVA) + uint64(lay0.DataBytes())
	va := c.vaFor(m.App, bytes)
	pages := int((bytes + physmem.PageSize - 1) / physmem.PageSize)
	c.cores.Submit(sim.Duration(2*pages)*c.cfg.MmapPerPage, func() {
		if _, err := c.mapRegion(m.App, va, bytes, []*iommu.IOMMU{c.mmu, devMMU}); err != nil {
			c.port.Send(st.origin, &msg.OpenResp{Service: st.service, App: m.App, OK: false, Reason: err.Error()})
			return
		}
		lay := virtio.NewLayout(iommu.VirtAddr(va), c.cfg.QueueEntries, cellSize)
		drv, err := virtio.NewDriver(c.dma, iommu.PASID(m.App), lay, 0)
		if err != nil {
			c.port.Send(st.origin, &msg.OpenResp{Service: st.service, App: m.App, OK: false, Reason: err.Error()})
			return
		}
		c.nextHandle++
		handle := c.nextHandle
		// Connect the kernel driver to the device endpoint.
		connDone := func(cr *msg.ConnectResp) {
			if !cr.OK {
				c.port.Send(st.origin, &msg.OpenResp{Service: st.service, App: m.App, OK: false, Reason: cr.Reason})
				return
			}
			var bell uint64
			if _, err := fmt.Sscanf(cr.Reason, "reqbell=%d", &bell); err != nil {
				c.port.Send(st.origin, &msg.OpenResp{Service: st.service, App: m.App, OK: false, Reason: "no doorbell"})
				return
			}
			drv.SetRequestBell(bell)
			c.kernelConns[handle] = &kernelFile{handle: handle, app: m.App, dev: dev, drv: drv, completed: make(map[uint32]*msg.FileIOResp), inflight: make(map[uint32]bool)}
			maxIO := cellSize - smartssd.ReqHeaderBytes
			resp := &msg.OpenResp{
				Service: st.service, App: m.App, OK: true,
				ConnID: handle, SharedBytes: uint64(maxIO),
			}
			c.completedOpens[openKey{m.App, st.service}] = &openVerdict{resp: resp, origin: st.origin}
			out := *resp
			c.port.Send(st.origin, &out)
		}
		c.pendingConnect[m.ConnID] = connDone
		c.port.Send(dev, &msg.ConnectReq{
			Service:      m.Service,
			ConnID:       m.ConnID,
			App:          m.App,
			RingVA:       uint64(lay.Base),
			RingEntries:  c.cfg.QueueEntries,
			DataVA:       uint64(lay.DataVA),
			DataBytes:    uint64(lay.DataBytes()),
			RespDoorbell: uint64(drv.RespBell),
		})
	})
}

// sysFileIO executes a mediated I/O on behalf of the app.
func (c *CPU) sysFileIO(src msg.DeviceID, m *msg.FileIOReq) {
	c.stats.Syscalls++
	c.stats.MediatedIOs++
	kf, ok := c.kernelConns[m.Handle]
	reject := func(status smartssd.Status) {
		c.port.Send(src, &msg.FileIOResp{App: m.App, Handle: m.Handle, Seq: m.Seq, Status: uint8(status)})
	}
	if !ok || kf.app != m.App {
		reject(smartssd.StatusBadRequest)
		return
	}
	// At-most-once: replay a completed syscall's response; swallow a
	// duplicate of one still in flight (its response goes out when the
	// device completes).
	if done, was := kf.completed[m.Seq]; was {
		resp := *done
		c.port.Send(src, &resp)
		return
	}
	if kf.inflight[m.Seq] {
		return
	}
	// Admission: bound the kernel's mediated-I/O backlog. Rejected
	// requests are not recorded in the at-most-once window — StatusBusy
	// is retryable, and a retransmit competes for admission afresh.
	if bound := c.cfg.IOBacklogBound; bound > 0 && c.ioOutstanding >= bound {
		c.stats.IOShed++
		reject(smartssd.StatusBusy)
		return
	}
	kf.inflight[m.Seq] = true
	c.ioOutstanding++
	c.ioG.Set(c.ioOutstanding)
	// complete records the final response for replay, then sends it.
	complete := func(resp *msg.FileIOResp) {
		c.ioOutstanding--
		c.ioG.Set(c.ioOutstanding)
		delete(kf.inflight, m.Seq)
		kf.completed[m.Seq] = resp
		if m.Seq > ioWindow {
			delete(kf.completed, m.Seq-ioWindow)
		}
		out := *resp
		c.port.Send(src, &out)
	}
	fail := func(status smartssd.Status) {
		complete(&msg.FileIOResp{App: m.App, Handle: m.Handle, Seq: m.Seq, Status: uint8(status)})
	}
	// Copy-in for writes (app buffer -> kernel page cache).
	inCopy := sim.Duration(float64(len(m.Data)) / c.cfg.CopyBytesPerNs)
	c.stats.BytesCopied += uint64(len(m.Data))
	c.cores.Submit(c.cfg.SyscallCost+inCopy, func() {
		req := smartssd.FileReq{Op: smartssd.FileOp(m.Op), Off: m.Off, Len: m.Len, Data: m.Data}
		err := kf.drv.Submit(smartssd.EncodeFileReq(req), func(respBytes []byte, err error) {
			if err != nil {
				fail(smartssd.StatusIOError)
				return
			}
			resp, derr := smartssd.DecodeFileResp(respBytes)
			if derr != nil {
				fail(smartssd.StatusIOError)
				return
			}
			// Completion interrupt + copy-out (kernel -> app buffer).
			outCopy := sim.Duration(float64(len(resp.Data)) / c.cfg.CopyBytesPerNs)
			c.stats.BytesCopied += uint64(len(resp.Data))
			c.stats.Interrupts++
			c.cores.Submit(c.cfg.InterruptCost+outCopy, func() {
				complete(&msg.FileIOResp{
					App: m.App, Handle: m.Handle, Seq: m.Seq,
					Status: uint8(resp.Status), Size: resp.Size, Data: resp.Data,
				})
			})
		})
		if err != nil {
			fail(smartssd.StatusIOError)
		}
	})
}

type mmapKey struct {
	app msg.AppID
	va  uint64
}

type mmapRec struct {
	dev    msg.DeviceID
	frames []physmem.Frame
}

// sysMmap is the kernel's explicit shared-memory map syscall: allocate
// frames and install them in the calling device's IOMMU at the requested
// VA. Mirrors the decentralized AllocReq flow so E8 compares like for
// like.
func (c *CPU) sysMmap(src msg.DeviceID, m *msg.AllocReq) {
	c.stats.Syscalls++
	deny := func(reason string) {
		c.port.Send(src, &msg.AllocResp{App: m.App, OK: false, Reason: reason, VA: m.VA})
	}
	mmu, ok := c.iommus[src]
	if !ok {
		deny("kernel has no IOMMU handle for caller")
		return
	}
	if m.App == 0 || m.Bytes == 0 || m.VA%physmem.PageSize != 0 {
		deny("malformed mmap")
		return
	}
	if _, dup := c.mmaps[mmapKey{m.App, m.VA}]; dup {
		deny("region exists")
		return
	}
	pages := int((m.Bytes + physmem.PageSize - 1) / physmem.PageSize)
	c.cores.Submit(c.cfg.SyscallCost+sim.Duration(pages)*c.cfg.MmapPerPage, func() {
		pasid := iommu.PASID(m.App)
		if !mmu.HasContext(pasid) {
			if err := mmu.CreateContext(pasid); err != nil {
				deny(err.Error())
				return
			}
		}
		frames := make([]physmem.Frame, 0, pages)
		fail := func(reason string) {
			for _, f := range frames {
				_ = c.mem.FreeFrames(f, 1)
			}
			deny(reason)
		}
		out := make([]uint64, 0, pages)
		for i := 0; i < pages; i++ {
			f, err := c.mem.AllocFrames(1)
			if err != nil {
				fail(err.Error())
				return
			}
			frames = append(frames, f)
			if err := mmu.Map(pasid, iommu.VirtAddr(m.VA+uint64(i)*physmem.PageSize), f, iommu.PermRW); err != nil {
				fail(err.Error())
				return
			}
			out = append(out, uint64(f))
		}
		c.stats.PagesMapped += uint64(pages)
		c.mmaps[mmapKey{m.App, m.VA}] = mmapRec{dev: src, frames: frames}
		c.port.Send(src, &msg.AllocResp{App: m.App, OK: true, VA: m.VA, Frames: out, Perm: m.Perm})
	})
}

// sysMunmap releases a region mapped by sysMmap.
func (c *CPU) sysMunmap(src msg.DeviceID, m *msg.FreeReq) {
	c.stats.Syscalls++
	deny := func(reason string) {
		c.port.Send(src, &msg.FreeResp{App: m.App, OK: false, Reason: reason, VA: m.VA})
	}
	rec, ok := c.mmaps[mmapKey{m.App, m.VA}]
	if !ok || rec.dev != src {
		deny("no such region")
		return
	}
	mmu := c.iommus[src]
	pages := len(rec.frames)
	c.cores.Submit(c.cfg.SyscallCost+sim.Duration(pages)*c.cfg.MmapPerPage, func() {
		pasid := iommu.PASID(m.App)
		for i, f := range rec.frames {
			_ = mmu.Unmap(pasid, iommu.VirtAddr(m.VA+uint64(i)*physmem.PageSize))
			_ = c.mem.FreeFrames(f, 1)
		}
		delete(c.mmaps, mmapKey{m.App, m.VA})
		c.port.Send(src, &msg.FreeResp{App: m.App, OK: true, VA: m.VA, Bytes: uint64(pages) * physmem.PageSize})
	})
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return "", false
}

// cellSizeFromQuote mirrors smartnic's inversion of virtio.SharedBytes.
func cellSizeFromQuote(quote uint64, entries uint16) int {
	ring := uint64((virtio.RingBytes(entries) + physmem.PageSize - 1) &^ (physmem.PageSize - 1))
	if quote <= ring {
		return physmem.PageSize
	}
	return int((quote - ring) / uint64(entries))
}
