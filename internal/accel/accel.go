// Package accel implements a generic compute accelerator — the third
// kind of self-managing device in the machine (§2.1 lists "FPGA blocks,
// GPU cores" among the resources devices may expose).
//
// The accelerator exposes transform services ("xform:<name>") consumed
// over the same VIRTIO queues as the SSD's file service. Its purpose in
// the reproduction is §2.2's sentence: "An application can be distributed
// across many devices, but what uniquely identifies it is its virtual
// address space" — an app on the smart NIC can hold one PASID whose
// mappings span the NIC, the SSD *and* this accelerator, with the bus
// mediating every grant (see examples/pipeline).
package accel

import (
	"fmt"
	"hash/crc32"
	"sort"
	"strings"

	"nocpu/internal/bus"
	"nocpu/internal/device"
	"nocpu/internal/interconnect"
	"nocpu/internal/iommu"
	"nocpu/internal/msg"
	"nocpu/internal/sim"
	"nocpu/internal/trace"
	"nocpu/internal/virtio"
)

// Op identifies a transform.
type Op uint8

// Transform operations.
const (
	OpCRC32 Op = iota + 1 // resp: 4-byte little-endian IEEE CRC
	OpROT13               // resp: transformed bytes
	OpRLE                 // resp: run-length-encoded bytes
)

// opNames maps service names to ops.
var opNames = map[string]Op{
	"crc32": OpCRC32,
	"rot13": OpROT13,
	"rle":   OpRLE,
}

func (o Op) String() string {
	for n, op := range opNames {
		if op == o {
			return n
		}
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Status codes in transform responses.
const (
	StatusOK         = 0
	StatusBadRequest = 1
)

// Costs model the engine: a fixed setup plus per-byte processing.
type Costs struct {
	Setup      sim.Duration
	BytesPerNs float64 // processing rate
}

// DefaultCosts models a modest fixed-function engine (4 GB/s).
var DefaultCosts = Costs{Setup: 500 * sim.Nanosecond, BytesPerNs: 4}

// Config assembles an accelerator.
type Config struct {
	Device device.Config
	Costs  Costs
	// CellSize for transform queues.
	CellSize int
	// Engines is the number of parallel compute engines.
	Engines int
}

// Stats counts accelerator activity.
type Stats struct {
	Ops            uint64
	BytesProcessed uint64
}

// Accel is the accelerator device.
type Accel struct {
	dev   *device.Device
	cfg   Config
	eng   *sim.Engine
	pool  *sim.Pool
	conns map[uint32]*conn
	next  uint32
	stats Stats
}

type conn struct {
	id     uint32
	app    msg.AppID
	client msg.DeviceID
	op     Op
	ep     *virtio.Endpoint
}

// New builds the accelerator and attaches it.
func New(eng *sim.Engine, b *bus.Bus, fab *interconnect.Fabric, tr *trace.Tracer, cfg Config) (*Accel, error) {
	if cfg.Costs.BytesPerNs == 0 {
		cfg.Costs = DefaultCosts
	}
	if cfg.CellSize == 0 {
		cfg.CellSize = 4096 + 16
	}
	if cfg.Engines <= 0 {
		cfg.Engines = 2
	}
	cfg.Device.Role = msg.RoleAccelerator
	d, err := device.New(eng, b, fab, tr, cfg.Device)
	if err != nil {
		return nil, err
	}
	a := &Accel{
		dev:   d,
		cfg:   cfg,
		eng:   eng,
		pool:  sim.NewPool(eng, cfg.Engines),
		conns: make(map[uint32]*conn),
	}
	d.AddService(&xformService{a: a})
	d.OnReset = func() { a.dropConns() }
	d.OnPeerFailed = a.onPeerFailed
	return a, nil
}

// Device exposes the chassis.
func (a *Accel) Device() *device.Device { return a.dev }

// Start powers the accelerator on.
func (a *Accel) Start() { a.dev.Start() }

// Stats returns a copy of the counters.
func (a *Accel) Stats() Stats { return a.stats }

func (a *Accel) dropConns() {
	for _, id := range a.sortedConnIDs() {
		if c := a.conns[id]; c.ep != nil {
			a.dev.Fabric().UnregisterDoorbell(c.ep.ReqBell)
		}
		delete(a.conns, id)
	}
}

// onPeerFailed drops connections whose client died; a revived client opens
// fresh connections rather than resuming these.
func (a *Accel) onPeerFailed(peer msg.DeviceID) {
	for _, id := range a.sortedConnIDs() {
		c := a.conns[id]
		if c.client != peer {
			continue
		}
		if c.ep != nil {
			a.dev.Fabric().UnregisterDoorbell(c.ep.ReqBell)
		}
		delete(a.conns, id)
	}
}

// sortedConnIDs iterates connections in id order for determinism.
func (a *Accel) sortedConnIDs() []uint32 {
	ids := make([]uint32, 0, len(a.conns))
	for id := range a.conns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// xformService answers "xform:<name>" queries and sessions.
type xformService struct {
	a *Accel
}

func (s *xformService) Name() string { return "xform" }

func (s *xformService) Match(query string) bool {
	name, ok := strings.CutPrefix(query, "xform:")
	if !ok {
		return false
	}
	_, known := opNames[name]
	return known
}

func (s *xformService) Open(src msg.DeviceID, req *msg.OpenReq) *msg.OpenResp {
	a := s.a
	name, ok := strings.CutPrefix(req.Service, "xform:")
	op, known := opNames[name]
	if !ok || !known {
		return &msg.OpenResp{Service: req.Service, App: req.App, OK: false, Reason: "unknown transform"}
	}
	a.next++
	id := a.next
	a.conns[id] = &conn{id: id, app: req.App, client: src, op: op}
	return &msg.OpenResp{
		Service: req.Service, App: req.App, OK: true, ConnID: id,
		SharedBytes: virtio.SharedBytes(128, a.cfg.CellSize),
	}
}

func (s *xformService) Connect(src msg.DeviceID, req *msg.ConnectReq) *msg.ConnectResp {
	a := s.a
	deny := func(reason string) *msg.ConnectResp {
		return &msg.ConnectResp{ConnID: req.ConnID, OK: false, Reason: reason}
	}
	c, ok := a.conns[req.ConnID]
	if !ok {
		return deny("no such connection")
	}
	if c.client != src || c.app != req.App {
		return deny("connection belongs to another client")
	}
	if c.ep != nil {
		return deny("already connected")
	}
	if req.RingEntries == 0 || req.DataBytes == 0 {
		return deny("malformed queue geometry")
	}
	lay := virtio.Layout{
		Base:     iommu.VirtAddr(req.RingVA),
		Entries:  req.RingEntries,
		DataVA:   iommu.VirtAddr(req.DataVA),
		CellSize: int(req.DataBytes) / int(req.RingEntries),
	}
	ep, err := virtio.NewEndpoint(a.dev.DMA(), iommu.PASID(req.App), lay,
		interconnect.DoorbellAddr(req.RespDoorbell), a.handlerFor(c))
	if err != nil {
		return deny(err.Error())
	}
	ep.OnError = func(err error) {
		a.dev.Send(c.client, &msg.ErrorNotify{App: c.app, Resource: "xform:" + c.op.String(), Code: 1, Detail: err.Error()})
		delete(a.conns, c.id)
	}
	c.ep = ep
	return &msg.ConnectResp{ConnID: req.ConnID, OK: true, Reason: fmt.Sprintf("reqbell=%d", ep.ReqBell)}
}

func (s *xformService) Close(src msg.DeviceID, req *msg.CloseReq) *msg.CloseResp {
	a := s.a
	c, ok := a.conns[req.ConnID]
	if !ok || c.client != src {
		return &msg.CloseResp{ConnID: req.ConnID, OK: false}
	}
	if c.ep != nil {
		a.dev.Fabric().UnregisterDoorbell(c.ep.ReqBell)
	}
	delete(a.conns, req.ConnID)
	return &msg.CloseResp{ConnID: req.ConnID, OK: true}
}

// handlerFor executes one transform request on a compute engine.
func (a *Accel) handlerFor(c *conn) virtio.Handler {
	return func(req []byte, done func([]byte)) {
		cost := a.cfg.Costs.Setup + sim.Duration(float64(len(req))/a.cfg.Costs.BytesPerNs)
		a.pool.Submit(cost, func() {
			out, ok := Transform(c.op, req)
			a.stats.Ops++
			a.stats.BytesProcessed += uint64(len(req))
			if !ok {
				done([]byte{StatusBadRequest})
				return
			}
			done(append([]byte{StatusOK}, out...))
		})
	}
}

// Transform applies op to data (pure function; also used by clients to
// verify results in tests).
func Transform(op Op, data []byte) ([]byte, bool) {
	switch op {
	case OpCRC32:
		s := crc32.ChecksumIEEE(data)
		return []byte{byte(s), byte(s >> 8), byte(s >> 16), byte(s >> 24)}, true
	case OpROT13:
		out := make([]byte, len(data))
		for i, b := range data {
			switch {
			case b >= 'a' && b <= 'z':
				out[i] = 'a' + (b-'a'+13)%26
			case b >= 'A' && b <= 'Z':
				out[i] = 'A' + (b-'A'+13)%26
			default:
				out[i] = b
			}
		}
		return out, true
	case OpRLE:
		return rleEncode(data), true
	}
	return nil, false
}

// rleEncode is a simple (count, byte) run-length encoding.
func rleEncode(data []byte) []byte {
	var out []byte
	i := 0
	for i < len(data) {
		b := data[i]
		run := 1
		for i+run < len(data) && data[i+run] == b && run < 255 {
			run++
		}
		out = append(out, byte(run), b)
		i += run
	}
	return out
}

// RLEDecode inverts rleEncode (used by consumers and tests).
func RLEDecode(enc []byte) ([]byte, error) {
	if len(enc)%2 != 0 {
		return nil, fmt.Errorf("accel: odd-length RLE stream")
	}
	var out []byte
	for i := 0; i < len(enc); i += 2 {
		run := int(enc[i])
		if run == 0 {
			return nil, fmt.Errorf("accel: zero-length run")
		}
		for j := 0; j < run; j++ {
			out = append(out, enc[i+1])
		}
	}
	return out, nil
}

// Client wraps a transform-service virtqueue with the protocol (pass a
// smartnic Connection's Queue).
type Client struct {
	Conn *virtio.Driver
}

// Do runs one transform round trip.
func (c *Client) Do(data []byte, done func(resp []byte, err error)) {
	err := c.Conn.Submit(data, func(resp []byte, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		if len(resp) < 1 || resp[0] != StatusOK {
			done(nil, fmt.Errorf("accel: transform failed"))
			return
		}
		done(resp[1:], nil)
	})
	if err != nil {
		done(nil, err)
	}
}
