package accel

import (
	"bytes"
	"testing"
	"testing/quick"

	"nocpu/internal/bus"
	"nocpu/internal/device"
	"nocpu/internal/interconnect"
	"nocpu/internal/memctrl"
	"nocpu/internal/msg"
	"nocpu/internal/physmem"
	"nocpu/internal/sim"
	"nocpu/internal/smartnic"
	"nocpu/internal/trace"
)

const (
	mcID    = msg.DeviceID(1)
	accelID = msg.DeviceID(2)
	nicID   = msg.DeviceID(3)
)

type world struct {
	eng     *sim.Engine
	bus     *bus.Bus
	acc     *Accel
	nic     *smartnic.NIC
	nextApp msg.AppID
}

func newWorld(t *testing.T) *world {
	return newWorldCosts(t, Costs{})
}

func newWorldCosts(t *testing.T, costs Costs) *world {
	t.Helper()
	w := &world{eng: sim.NewEngine()}
	tr := trace.New(0)
	mem := physmem.MustNew(8 * 1024 * physmem.PageSize)
	fab := interconnect.NewFabric(w.eng, mem, interconnect.DefaultCosts)
	w.bus = bus.New(w.eng, bus.DefaultConfig, tr)
	mc, err := memctrl.New(w.eng, w.bus, fab, tr, memctrl.Config{
		Device: device.Config{ID: mcID, Name: "memctrl"},
	})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := New(w.eng, w.bus, fab, tr, Config{
		Device: device.Config{ID: accelID, Name: "accel"},
		Costs:  costs,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.acc = acc
	nic, err := smartnic.New(w.eng, w.bus, fab, tr, smartnic.Config{
		Device: device.Config{ID: nicID, Name: "nic"},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.nic = nic
	mc.Start()
	acc.Start()
	nic.Start()
	w.eng.Run()
	return w
}

// xformApp opens one transform connection at boot.
type xformApp struct {
	id      msg.AppID
	service string
	client  *Client
	openErr error
}

func (a *xformApp) AppID() msg.AppID { return a.id }
func (a *xformApp) Boot(rt *smartnic.Runtime) {
	rt.OpenService(mcID, a.service, 0, 32, func(c *smartnic.Connection, err error) {
		if err != nil {
			a.openErr = err
			return
		}
		a.client = &Client{Conn: c.Queue}
	})
}
func (a *xformApp) ServeNetwork(p []byte, reply func([]byte)) { reply(p) }
func (a *xformApp) PeerFailed(msg.DeviceID)                   {}

func openClient(t *testing.T, w *world, service string) *Client {
	t.Helper()
	w.nextApp++
	app := &xformApp{id: w.nextApp, service: service}
	w.nic.AddApp(app)
	w.eng.Run()
	if app.openErr != nil {
		t.Fatal(app.openErr)
	}
	if app.client == nil {
		t.Fatal("no client")
	}
	return app.client
}

func TestCRC32RoundTrip(t *testing.T) {
	w := newWorld(t)
	c := openClient(t, w, "xform:crc32")
	payload := []byte("the last cpu computes no checksums")
	var got []byte
	c.Do(payload, func(resp []byte, err error) {
		if err != nil {
			t.Error(err)
		}
		got = resp
	})
	w.eng.Run()
	want, _ := Transform(OpCRC32, payload)
	if !bytes.Equal(got, want) {
		t.Fatalf("crc = %x want %x", got, want)
	}
	if w.acc.Stats().Ops != 1 {
		t.Errorf("ops = %d", w.acc.Stats().Ops)
	}
}

func TestROT13AndRLE(t *testing.T) {
	w := newWorld(t)
	rot := openClient(t, w, "xform:rot13")
	var got []byte
	rot.Do([]byte("Hello, World!"), func(resp []byte, err error) { got = resp })
	w.eng.Run()
	if string(got) != "Uryyb, Jbeyq!" {
		t.Fatalf("rot13 = %q", got)
	}

	rle := openClient(t, w, "xform:rle")
	payload := bytes.Repeat([]byte{7}, 300)
	payload = append(payload, 1, 2, 3)
	rle.Do(payload, func(resp []byte, err error) { got = resp })
	w.eng.Run()
	dec, err := RLEDecode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, payload) {
		t.Fatal("rle round trip corrupt")
	}
	if len(got) >= len(payload) {
		t.Errorf("rle did not compress a run (in=%d out=%d)", len(payload), len(got))
	}
}

func TestUnknownTransformNotDiscovered(t *testing.T) {
	w := newWorld(t)
	app := &xformApp{id: 9, service: "xform:quantum"}
	w.nic.AddApp(app)
	// Bounded run: discovery will time out (nobody matches).
	w.eng.RunFor(15 * sim.Millisecond)
	w.eng.Run()
	if app.openErr == nil {
		t.Fatal("unknown transform discovered")
	}
}

func TestComputeCostModel(t *testing.T) {
	w := newWorld(t)
	c := openClient(t, w, "xform:crc32")
	// Large payload: compute time = setup + bytes/rate must dominate.
	payload := make([]byte, 4000)
	start := w.eng.Now()
	var doneAt sim.Time
	c.Do(payload, func(resp []byte, err error) { doneAt = w.eng.Now() })
	w.eng.Run()
	elapsed := doneAt.Sub(start)
	compute := DefaultCosts.Setup + sim.Duration(float64(len(payload))/DefaultCosts.BytesPerNs)
	if elapsed < compute {
		t.Fatalf("round trip %v less than compute time %v", elapsed, compute)
	}
}

func TestEnginePoolParallelism(t *testing.T) {
	// Slow engines so compute dominates transport: two engines must run
	// two concurrent ops in ~one compute time, four ops in ~two.
	costs := Costs{Setup: 100 * sim.Microsecond, BytesPerNs: 4}
	w := newWorldCosts(t, costs)
	c := openClient(t, w, "xform:crc32")
	payload := make([]byte, 64)
	var last sim.Time
	start := w.eng.Now()
	for i := 0; i < 4; i++ {
		c.Do(payload, func([]byte, error) { last = w.eng.Now() })
	}
	w.eng.Run()
	elapsed := last.Sub(start)
	// Serial would be >= 4*100us; two engines should finish in a bit over
	// 2*100us (plus transport).
	if elapsed >= 4*costs.Setup {
		t.Fatalf("no engine parallelism: %v", elapsed)
	}
	if elapsed < 2*costs.Setup {
		t.Fatalf("impossible speedup: %v", elapsed)
	}
}

func TestRLEProperties(t *testing.T) {
	f := func(data []byte) bool {
		enc := rleEncode(data)
		dec, err := RLEDecode(enc)
		if err != nil {
			return false
		}
		return bytes.Equal(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	if _, err := RLEDecode([]byte{1}); err == nil {
		t.Error("odd stream accepted")
	}
	if _, err := RLEDecode([]byte{0, 5}); err == nil {
		t.Error("zero run accepted")
	}
}

func TestTransformPure(t *testing.T) {
	if _, ok := Transform(Op(99), []byte{1}); ok {
		t.Error("unknown op transformed")
	}
	// ROT13 is an involution.
	f := func(data []byte) bool {
		once, _ := Transform(OpROT13, data)
		twice, _ := Transform(OpROT13, once)
		return bytes.Equal(twice, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
