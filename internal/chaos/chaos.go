// Package chaos is the deterministic crash-schedule harness for the
// recovery experiments (§4 "error handling"). A Plan names the crashable
// components of a machine and the statistical shape of a crash campaign
// (how many crashes, over what window, how tightly spaced, how many
// coordinated double-failures); Compile turns it into a fixed timetable
// using nothing but the plan's seed, and Arm schedules the crash actions
// on the simulation engine through the fault plane's CrashAt hook so
// message faults and lifecycle faults live in one schedule.
//
// The package also carries the Ledger, the oracle for the three recovery
// guarantees the experiments assert:
//
//	G1 — no acked write lost: a read after recovery never returns a value
//	     older than the newest acknowledged write for that key.
//	G2 — no op applied twice: every read returns a value the workload
//	     actually issued for that key, and reads never regress (a stale
//	     duplicate applied after a newer write would surface as a
//	     regression because every (key, attempt) value is unique).
//	G3 — bounded recovery: after every crash event the workload completes
//	     an acknowledged operation again within a finite virtual-time
//	     window (the window itself is measured by the experiment; the
//	     ledger only aggregates it).
//
// Determinism: Compile draws from a private sim.Rand seeded only by
// Plan.Seed, so the same plan compiles to the same timetable on every
// run, and the ledger's verdicts depend only on the note-call sequence.
package chaos

import (
	"fmt"
	"sort"
	"strings"

	"nocpu/internal/faultinject"
	"nocpu/internal/sim"
)

// Target is one crashable component and the closure that crashes it
// (e.g. a device Kill, a kernel panic). The harness never restarts a
// target itself — recovery is the system's job (watchdog, Reset,
// rejoin), which is exactly what the experiments measure.
type Target struct {
	Name  string
	Crash func()
}

// Plan is the declarative description of a crash campaign.
type Plan struct {
	Seed    uint64       // RNG seed; the only source of randomness
	Start   sim.Time     // earliest crash instant
	Window  sim.Duration // crash instants are drawn in [Start, Start+Window)
	Crashes int          // total crash events
	MinGap  sim.Duration // minimum spacing between consecutive events
	Doubles int          // of the events, how many hit two targets at once
	Targets []Target
}

// Event is one compiled crash: at time At, every listed target crashes
// in order (two entries for a coordinated double-failure).
type Event struct {
	At      sim.Time
	Targets []int // indices into Plan.Targets
}

// Schedule is a compiled, immutable crash timetable.
type Schedule struct {
	plan   Plan
	Events []Event
}

// Compile fixes the campaign into a timetable. It validates the plan,
// draws the crash instants, sorts them, enforces MinGap by pushing later
// events out, then assigns targets. The first Doubles events in time
// order become double-failures (deterministic, so a golden schedule in a
// test pins both the instants and the victim pairs).
func (p Plan) Compile() (*Schedule, error) {
	if p.Crashes < 0 || p.Doubles < 0 {
		return nil, fmt.Errorf("chaos: negative crash counts")
	}
	if p.Doubles > p.Crashes {
		return nil, fmt.Errorf("chaos: %d doubles > %d crashes", p.Doubles, p.Crashes)
	}
	if p.Crashes > 0 && len(p.Targets) == 0 {
		return nil, fmt.Errorf("chaos: %d crashes but no targets", p.Crashes)
	}
	if p.Doubles > 0 && len(p.Targets) < 2 {
		return nil, fmt.Errorf("chaos: double-failures need at least two targets")
	}
	if p.Crashes > 0 && p.Window <= 0 {
		return nil, fmt.Errorf("chaos: crashes need a positive window")
	}
	for i, t := range p.Targets {
		if t.Crash == nil {
			return nil, fmt.Errorf("chaos: target %d (%q) has no crash action", i, t.Name)
		}
	}
	rng := sim.NewRand(p.Seed ^ 0x63686173) // "chas"
	s := &Schedule{plan: p}
	ats := make([]sim.Time, p.Crashes)
	for i := range ats {
		ats[i] = p.Start.Add(sim.Duration(rng.Intn(int(p.Window))))
	}
	sort.Slice(ats, func(i, j int) bool { return ats[i] < ats[j] })
	for i := 1; i < len(ats); i++ {
		if floor := ats[i-1].Add(p.MinGap); ats[i] < floor {
			ats[i] = floor
		}
	}
	for i, at := range ats {
		ev := Event{At: at, Targets: []int{rng.Intn(len(p.Targets))}}
		if i < p.Doubles {
			second := rng.Intn(len(p.Targets) - 1)
			if second >= ev.Targets[0] {
				second++
			}
			ev.Targets = append(ev.Targets, second)
		}
		s.Events = append(s.Events, ev)
	}
	return s, nil
}

// MustCompile is Compile for fixed plans in experiments and tests.
func (p Plan) MustCompile() *Schedule {
	s, err := p.Compile()
	if err != nil {
		panic(err)
	}
	return s
}

// Arm schedules every event's crash actions on the engine through the
// fault plane (a nil plane still works — CrashAt only needs the engine).
// onCrash, if non-nil, runs after the targets of an event have crashed,
// so the experiment can mark the instant it starts timing recovery.
func (s *Schedule) Arm(eng *sim.Engine, plane *faultinject.Plane, onCrash func(Event)) {
	for _, ev := range s.Events {
		ev := ev
		plane.CrashAt(eng, ev.At, func() {
			for _, ti := range ev.Targets {
				s.plan.Targets[ti].Crash()
			}
			if onCrash != nil {
				onCrash(ev)
			}
		})
	}
}

// String renders the timetable, one event per line ("12.5ms nic+ssd").
func (s *Schedule) String() string {
	var b strings.Builder
	for i, ev := range s.Events {
		names := make([]string, len(ev.Targets))
		for j, ti := range ev.Targets {
			names[j] = s.plan.Targets[ti].Name
		}
		fmt.Fprintf(&b, "%d: %v %s\n", i, ev.At, strings.Join(names, "+"))
	}
	return b.String()
}
