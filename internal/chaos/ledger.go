package chaos

import (
	"fmt"
	"sort"

	"nocpu/internal/sim"
)

// Ledger is the client-side oracle for the recovery guarantees. The
// workload gives every write a value that is unique per (key, attempt)
// and strictly increasing per key; the ledger records which values were
// issued and which were acknowledged, observes every read, and judges
// G1/G2 from those observations alone — it never looks inside the system
// under test.
type Ledger struct {
	keys map[string]*keyState

	attempts uint64
	acks     uint64
	reads    uint64

	g1Lost uint64 // reads that returned a value older than the newest ack
	g2Dups uint64 // reads of never-issued values, or regressing reads

	violations []string
}

type keyState struct {
	issued   map[uint64]bool // every value ever sent for this key
	maxAcked uint64
	acked    bool
	lastRead uint64
	readAny  bool
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{keys: make(map[string]*keyState)} }

func (l *Ledger) state(key string) *keyState {
	ks := l.keys[key]
	if ks == nil {
		ks = &keyState{issued: make(map[uint64]bool)}
		l.keys[key] = ks
	}
	return ks
}

// NoteAttempt records that a write of val to key was issued. Values must
// be strictly increasing per key; the ledger enforces this because both
// guarantees are judged against that order.
func (l *Ledger) NoteAttempt(key string, val uint64) {
	ks := l.state(key)
	if ks.issued[val] {
		panic(fmt.Sprintf("chaos: workload reused value %d for key %q", val, key))
	}
	ks.issued[val] = true
	l.attempts++
}

// NoteAck records that the write of val to key was acknowledged.
func (l *Ledger) NoteAck(key string, val uint64) {
	ks := l.state(key)
	if !ks.issued[val] {
		panic(fmt.Sprintf("chaos: ack for unissued value %d on key %q", val, key))
	}
	l.acks++
	if !ks.acked || val > ks.maxAcked {
		ks.acked, ks.maxAcked = true, val
	}
}

// NoteRead records a successful read of key returning val and judges it.
// found=false means the key was absent; absence is a G1 violation once
// any write to the key has been acked.
func (l *Ledger) NoteRead(key string, val uint64, found bool) {
	ks := l.state(key)
	l.reads++
	if !found {
		if ks.acked {
			l.g1Lost++
			l.note("G1: key %q absent after ack of value %d", key, ks.maxAcked)
		}
		return
	}
	if !ks.issued[val] {
		l.g2Dups++
		l.note("G2: key %q returned never-issued value %d", key, val)
		return
	}
	if ks.acked && val < ks.maxAcked {
		l.g1Lost++
		l.note("G1: key %q returned %d, older than acked %d", key, val, ks.maxAcked)
	}
	if ks.readAny && val < ks.lastRead {
		l.g2Dups++
		l.note("G2: key %q regressed from %d to %d (stale duplicate applied)", key, ks.lastRead, val)
	}
	ks.readAny, ks.lastRead = true, val
}

func (l *Ledger) note(format string, args ...any) {
	const maxViolations = 16
	if len(l.violations) < maxViolations {
		l.violations = append(l.violations, fmt.Sprintf(format, args...))
	}
}

// Report is the aggregated verdict of one chaos run.
type Report struct {
	Attempts uint64
	Acks     uint64
	Reads    uint64
	G1Lost   uint64 // acked writes lost (must be 0)
	G2Dups   uint64 // duplicate/corrupt applies observed (must be 0)

	// Recoveries holds one virtual-time recovery window per crash event,
	// filled in by the experiment (G3: each must be finite and bounded).
	Recoveries []sim.Duration

	Violations []string // first few violations, for diagnostics
}

// Report tallies the run. Keys with acked writes that were never read
// back count as unverified, not as violations — call NoteRead for every
// key after the run to make the G1 check total.
func (l *Ledger) Report() Report {
	return Report{
		Attempts:   l.attempts,
		Acks:       l.acks,
		Reads:      l.reads,
		G1Lost:     l.g1Lost,
		G2Dups:     l.g2Dups,
		Violations: append([]string(nil), l.violations...),
	}
}

// Keys returns every key the ledger has seen, sorted, for the final
// read-back sweep.
func (l *Ledger) Keys() []string {
	out := make([]string, 0, len(l.keys))
	for k := range l.keys {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// MaxRecovery returns the largest recovery window, or 0 if none.
func (r Report) MaxRecovery() sim.Duration {
	var max sim.Duration
	for _, d := range r.Recoveries {
		if d > max {
			max = d
		}
	}
	return max
}

// Clean reports whether the run upheld G1 and G2 and every crash event
// recovered within bound (G3). bound <= 0 skips the G3 check.
func (r Report) Clean(bound sim.Duration) bool {
	if r.G1Lost != 0 || r.G2Dups != 0 {
		return false
	}
	if bound > 0 {
		for _, d := range r.Recoveries {
			if d > bound {
				return false
			}
		}
	}
	return true
}
