package chaos

import (
	"reflect"
	"testing"

	"nocpu/internal/sim"
)

func ms(n int) sim.Duration { return sim.Duration(n) * sim.Millisecond }

func testPlan(seed uint64) Plan {
	return Plan{
		Seed:    seed,
		Start:   sim.Time(0).Add(ms(5)),
		Window:  ms(50),
		Crashes: 4,
		MinGap:  ms(8),
		Doubles: 1,
		Targets: []Target{
			{Name: "nic", Crash: func() {}},
			{Name: "ssd", Crash: func() {}},
			{Name: "memctrl", Crash: func() {}},
		},
	}
}

// Compile is a pure function of the plan: same seed, same timetable;
// different seed, different timetable.
func TestCompileDeterministic(t *testing.T) {
	a := testPlan(42).MustCompile()
	b := testPlan(42).MustCompile()
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatalf("same plan compiled differently:\n%v\nvs\n%v", a, b)
	}
	c := testPlan(43).MustCompile()
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatalf("different seeds compiled identically:\n%v", a)
	}
}

func TestCompileShape(t *testing.T) {
	p := testPlan(7)
	s := p.MustCompile()
	if len(s.Events) != p.Crashes {
		t.Fatalf("want %d events, got %d", p.Crashes, len(s.Events))
	}
	var prev sim.Time
	for i, ev := range s.Events {
		if ev.At < p.Start {
			t.Errorf("event %d at %v before window start %v", i, ev.At, p.Start)
		}
		if i > 0 && ev.At.Sub(prev) < p.MinGap {
			t.Errorf("events %d and %d only %v apart, MinGap %v", i-1, i, ev.At.Sub(prev), p.MinGap)
		}
		prev = ev.At
		want := 1
		if i < p.Doubles {
			want = 2
		}
		if len(ev.Targets) != want {
			t.Errorf("event %d has %d targets, want %d", i, len(ev.Targets), want)
		}
		if len(ev.Targets) == 2 && ev.Targets[0] == ev.Targets[1] {
			t.Errorf("event %d double-failure hit the same target twice", i)
		}
		for _, ti := range ev.Targets {
			if ti < 0 || ti >= len(p.Targets) {
				t.Errorf("event %d target index %d out of range", i, ti)
			}
		}
	}
}

func TestCompileRejectsBadPlans(t *testing.T) {
	for name, mutate := range map[string]func(*Plan){
		"doubles exceed crashes": func(p *Plan) { p.Doubles = p.Crashes + 1 },
		"no targets":             func(p *Plan) { p.Targets = nil },
		"double needs two":       func(p *Plan) { p.Targets = p.Targets[:1] },
		"zero window":            func(p *Plan) { p.Window = 0 },
		"nil crash action":       func(p *Plan) { p.Targets[0].Crash = nil },
	} {
		p := testPlan(1)
		mutate(&p)
		if _, err := p.Compile(); err == nil {
			t.Errorf("%s: Compile accepted an invalid plan", name)
		}
	}
}

// Arm fires each event's crash actions at exactly the compiled instant,
// in target order, and then the onCrash callback.
func TestArmFiresOnSchedule(t *testing.T) {
	eng := sim.NewEngine()
	var fired []string
	var times []sim.Time
	p := testPlan(99)
	for i := range p.Targets {
		name := p.Targets[i].Name
		p.Targets[i].Crash = func() {
			fired = append(fired, name)
			times = append(times, eng.Now())
		}
	}
	s := p.MustCompile()
	var crashEvents []Event
	s.Arm(eng, nil, func(ev Event) { crashEvents = append(crashEvents, ev) })
	eng.RunFor(p.Start.Sub(sim.Time(0)) + p.Window + ms(100))

	wantFires := 0
	for _, ev := range s.Events {
		wantFires += len(ev.Targets)
	}
	if len(fired) != wantFires {
		t.Fatalf("want %d crash actions, got %d (%v)", wantFires, len(fired), fired)
	}
	if len(crashEvents) != len(s.Events) {
		t.Fatalf("want %d onCrash callbacks, got %d", len(s.Events), len(crashEvents))
	}
	i := 0
	for _, ev := range s.Events {
		for _, ti := range ev.Targets {
			if fired[i] != p.Targets[ti].Name {
				t.Errorf("fire %d: want %s, got %s", i, p.Targets[ti].Name, fired[i])
			}
			if times[i] != ev.At {
				t.Errorf("fire %d: want time %v, got %v", i, ev.At, times[i])
			}
			i++
		}
	}
}

func TestLedgerCleanRun(t *testing.T) {
	l := NewLedger()
	l.NoteAttempt("k", 1)
	l.NoteAck("k", 1)
	l.NoteAttempt("k", 2) // crashed before ack
	l.NoteAttempt("k", 3)
	l.NoteAck("k", 3)
	l.NoteRead("k", 3, true)
	r := l.Report()
	if r.G1Lost != 0 || r.G2Dups != 0 {
		t.Fatalf("clean run flagged: %+v", r)
	}
	if !r.Clean(0) {
		t.Fatalf("Clean() false on clean run: %+v", r)
	}
	if r.Attempts != 3 || r.Acks != 2 || r.Reads != 1 {
		t.Fatalf("counters wrong: %+v", r)
	}
}

// An unacked write may or may not survive a crash; reading it back is
// legal as long as it does not shadow a newer acked write.
func TestLedgerUnackedWriteSurvives(t *testing.T) {
	l := NewLedger()
	l.NoteAttempt("k", 1)
	l.NoteAck("k", 1)
	l.NoteAttempt("k", 2) // never acked
	l.NoteRead("k", 2, true)
	if r := l.Report(); r.G1Lost != 0 || r.G2Dups != 0 {
		t.Fatalf("surviving unacked write flagged: %+v", r)
	}
}

func TestLedgerG1Violations(t *testing.T) {
	l := NewLedger()
	l.NoteAttempt("a", 1)
	l.NoteAck("a", 1)
	l.NoteAttempt("a", 2)
	l.NoteAck("a", 2)
	l.NoteRead("a", 1, true) // regressed below acked 2
	l.NoteAttempt("b", 1)
	l.NoteAck("b", 1)
	l.NoteRead("b", 0, false) // acked key vanished
	r := l.Report()
	if r.G1Lost != 2 {
		t.Fatalf("want 2 G1 violations, got %+v", r)
	}
	if r.Clean(0) {
		t.Fatal("Clean() true despite G1 violations")
	}
	if len(r.Violations) != 2 {
		t.Fatalf("want 2 violation notes, got %v", r.Violations)
	}
}

func TestLedgerG2Violations(t *testing.T) {
	l := NewLedger()
	l.NoteAttempt("a", 1)
	l.NoteRead("a", 7, true) // value never issued
	l.NoteAttempt("b", 1)
	l.NoteAttempt("b", 2)
	l.NoteRead("b", 2, true)
	l.NoteRead("b", 1, true) // regression: stale duplicate re-applied
	r := l.Report()
	if r.G2Dups != 2 {
		t.Fatalf("want 2 G2 violations, got %+v", r)
	}
}

func TestLedgerAbsentUnackedKeyOK(t *testing.T) {
	l := NewLedger()
	l.NoteAttempt("k", 1) // lost before ack: absence is legal
	l.NoteRead("k", 0, false)
	if r := l.Report(); r.G1Lost != 0 || r.G2Dups != 0 {
		t.Fatalf("absent unacked key flagged: %+v", r)
	}
}

func TestReportG3Bound(t *testing.T) {
	r := Report{Recoveries: []sim.Duration{ms(2), ms(9)}}
	if got := r.MaxRecovery(); got != ms(9) {
		t.Fatalf("MaxRecovery = %v, want %v", got, ms(9))
	}
	if !r.Clean(ms(10)) {
		t.Fatal("Clean(10ms) false for max 9ms")
	}
	if r.Clean(ms(5)) {
		t.Fatal("Clean(5ms) true for max 9ms")
	}
}

func TestLedgerKeysSorted(t *testing.T) {
	l := NewLedger()
	for _, k := range []string{"b", "a", "c"} {
		l.NoteAttempt(k, 1)
	}
	if got := l.Keys(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("Keys() = %v", got)
	}
}
