// Package memctrl implements the discrete memory-controller device.
//
// §2.4 of "The Last CPU" calls for "a discrete memory controller ...
// separate from the CPU package" (in the spirit of Intel's Memory
// Controller Hub or IBM's MXT). It is the resource controller for
// physical memory: it owns allocation policy, keeps per-application
// allocation tables, and authorizes every mapping and grant — while the
// system bus retains the mechanism (actually programming IOMMUs). The
// controller never touches an IOMMU itself, per §2.2: "the resource
// controller cannot be allowed to access the IOMMU of another device
// directly".
package memctrl

import (
	"fmt"
	"sort"

	"nocpu/internal/bus"
	"nocpu/internal/device"
	"nocpu/internal/interconnect"
	"nocpu/internal/iommu"
	"nocpu/internal/msg"
	"nocpu/internal/physmem"
	"nocpu/internal/sim"
	"nocpu/internal/trace"
)

// Config tunes the controller.
type Config struct {
	Device device.Config
	// OpCost is the controller's table-update time per request.
	OpCost sim.Duration
	// QuotaPerApp caps bytes allocated to one application; 0 = unlimited.
	QuotaPerApp uint64
}

// DefaultOpCost models a small hardware table engine.
const DefaultOpCost = 300 * sim.Nanosecond

// Stats counts controller activity.
type Stats struct {
	Allocs      uint64
	Frees       uint64
	AuthsOK     uint64
	AuthsDenied uint64
	Denials     uint64
	BytesLive   uint64
}

// allocation is one live region. For huge allocations, frames holds the
// base frame of each contiguous 2 MiB run.
type allocation struct {
	owner  msg.DeviceID
	frames []physmem.Frame
	bytes  uint64
	huge   bool
}

// Controller is the memory-controller device.
type Controller struct {
	dev  *device.Device
	mem  *physmem.Memory
	cfg  Config
	proc *sim.Server

	// table maps app -> base VA -> allocation.
	table map[msg.AppID]map[uint64]*allocation
	// appBytes tracks per-app usage for the quota.
	appBytes map[msg.AppID]uint64
	// freed remembers released regions so a retried FreeReq whose first
	// response was lost gets OK instead of "no such region".
	freed map[freeKey]freedRegion

	stats Stats
}

type freeKey struct {
	app msg.AppID
	va  uint64
}

// freedRegion records the outcome of a completed free for idempotent
// replay; it is evicted when the VA is reallocated. reqBytes is the byte
// count the original request carried: a retransmission repeats it
// exactly, while a later, distinct double free (different or unspecified
// size) must still be denied.
type freedRegion struct {
	owner    msg.DeviceID
	reqBytes uint64
	bytes    uint64
}

// New builds and registers the controller on the bus. The device config's
// Role is forced to RoleMemoryController.
func New(eng *sim.Engine, b *bus.Bus, fab *interconnect.Fabric, tr *trace.Tracer, cfg Config) (*Controller, error) {
	cfg.Device.Role = msg.RoleMemoryController
	if cfg.OpCost == 0 {
		cfg.OpCost = DefaultOpCost
	}
	d, err := device.New(eng, b, fab, tr, cfg.Device)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		dev:      d,
		mem:      fab.Memory(),
		cfg:      cfg,
		proc:     sim.NewServer(eng),
		table:    make(map[msg.AppID]map[uint64]*allocation),
		appBytes: make(map[msg.AppID]uint64),
		freed:    make(map[freeKey]freedRegion),
	}
	d.Handle(msg.KindAllocReq, c.onAlloc)
	d.Handle(msg.KindFreeReq, c.onFree)
	d.Handle(msg.KindAuthReq, c.onAuth)
	d.OnReset = c.onReset
	return c, nil
}

// onReset recovers from a controller crash. The allocation table and the
// free-replay log live in the controller's persistent table memory (§2.4's
// discrete controller keeps its state with the DRAM it manages, not with
// any host) — losing them would leak every live frame forever, since no
// other component knows the frame lists. What a crash does destroy is the
// volatile derived state: the per-app accounting is rebuilt here by
// walking the table, and any request in the processing queue died with the
// engine (requesters retransmit; alloc and free replays are idempotent).
func (c *Controller) onReset() {
	c.appBytes = make(map[msg.AppID]uint64)
	var live uint64
	for _, app := range c.sortedApps() {
		for _, base := range sortedBases(c.table[app]) {
			a := c.table[app][base]
			c.appBytes[app] += a.bytes
			live += a.bytes
		}
	}
	c.stats.BytesLive = live
}

// sortedApps iterates the table's apps in id order for determinism.
func (c *Controller) sortedApps() []msg.AppID {
	apps := make([]msg.AppID, 0, len(c.table))
	for app := range c.table {
		apps = append(apps, app)
	}
	sort.Slice(apps, func(i, j int) bool { return apps[i] < apps[j] })
	return apps
}

// Device exposes the chassis (Start, state).
func (c *Controller) Device() *device.Device { return c.dev }

// Start powers the controller on.
func (c *Controller) Start() { c.dev.Start() }

// Stats returns a copy of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// LiveAllocations returns the number of live regions (audits).
func (c *Controller) LiveAllocations() int {
	n := 0
	for _, m := range c.table {
		n += len(m)
	}
	return n
}

func pagesOf(bytes uint64) int {
	return int((bytes + physmem.PageSize - 1) / physmem.PageSize)
}

// sortedBases iterates an app's regions in base-address order: the loops
// below reply from inside the loop body, so which region decides must not
// depend on map iteration order.
func sortedBases(regions map[uint64]*allocation) []uint64 {
	bases := make([]uint64, 0, len(regions))
	for base := range regions {
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	return bases
}

func (c *Controller) onAlloc(env msg.Envelope) {
	m := env.Msg.(*msg.AllocReq)
	c.proc.Submit(c.cfg.OpCost, func() {
		resp := c.doAlloc(env.Src, m)
		c.dev.Send(env.Src, resp)
	})
}

func (c *Controller) doAlloc(src msg.DeviceID, m *msg.AllocReq) *msg.AllocResp {
	deny := func(reason string) *msg.AllocResp {
		c.stats.Denials++
		return &msg.AllocResp{App: m.App, OK: false, Reason: reason, VA: m.VA}
	}
	if m.App == 0 {
		return deny("invalid app id")
	}
	if m.Bytes == 0 {
		return deny("zero-byte allocation")
	}
	if m.VA%physmem.PageSize != 0 {
		return deny("unaligned virtual address")
	}
	apps := c.table[m.App]
	if apps == nil {
		apps = make(map[uint64]*allocation)
		c.table[m.App] = apps
	}
	pages := pagesOf(m.Bytes)
	bytes := uint64(pages) * physmem.PageSize
	// Idempotent replay: a retried AllocReq for a region this requester
	// already holds (same extent, same flavor) re-sends the original
	// verdict — the first response was lost in flight, not the request's
	// effect. The frames must be the same ones, or the requester and its
	// IOMMU would disagree about the region's backing.
	if a, ok := apps[m.VA]; ok && a.owner == src && a.huge == m.Huge {
		want := bytes
		if m.Huge {
			runs := int((m.Bytes + iommu.HugePageSize - 1) / iommu.HugePageSize)
			want = uint64(runs) * iommu.HugePageSize
		}
		if a.bytes == want {
			out := make([]uint64, len(a.frames))
			for i, f := range a.frames {
				out[i] = uint64(f)
			}
			return &msg.AllocResp{App: m.App, OK: true, VA: m.VA, Frames: out, Perm: m.Perm, Huge: a.huge}
		}
	}
	// Overlap check against this app's existing regions.
	for _, base := range sortedBases(apps) {
		if a := apps[base]; m.VA < base+a.bytes && base < m.VA+bytes {
			return deny(fmt.Sprintf("overlaps existing region at %#x", base))
		}
	}
	if m.Huge {
		// Huge allocations: VA must be 2 MiB aligned and bytes round up
		// to whole runs of contiguous, naturally aligned frames.
		if m.VA%iommu.HugePageSize != 0 {
			return deny("huge allocation requires 2MiB-aligned virtual address")
		}
		runs := int((m.Bytes + iommu.HugePageSize - 1) / iommu.HugePageSize)
		bytes = uint64(runs) * iommu.HugePageSize
		// Re-check overlap with the rounded-up extent.
		for _, base := range sortedBases(apps) {
			if a := apps[base]; m.VA < base+a.bytes && base < m.VA+bytes {
				return deny(fmt.Sprintf("overlaps existing region at %#x", base))
			}
		}
		if q := c.cfg.QuotaPerApp; q > 0 && c.appBytes[m.App]+bytes > q {
			return deny("quota exceeded")
		}
		frames := make([]physmem.Frame, 0, runs)
		for i := 0; i < runs; i++ {
			f, err := c.mem.AllocFrames(iommu.HugeFrames)
			if err != nil {
				for _, ff := range frames {
					_ = c.mem.FreeFrames(ff, iommu.HugeFrames)
				}
				return deny("out of contiguous physical memory")
			}
			frames = append(frames, f)
		}
		apps[m.VA] = &allocation{owner: src, frames: frames, bytes: bytes, huge: true}
		delete(c.freed, freeKey{m.App, m.VA})
		c.appBytes[m.App] += bytes
		c.stats.Allocs++
		c.stats.BytesLive += bytes
		out := make([]uint64, runs)
		for i, f := range frames {
			out[i] = uint64(f)
		}
		return &msg.AllocResp{App: m.App, OK: true, VA: m.VA, Frames: out, Perm: m.Perm, Huge: true}
	}
	if q := c.cfg.QuotaPerApp; q > 0 && c.appBytes[m.App]+bytes > q {
		return deny("quota exceeded")
	}
	frames := make([]physmem.Frame, 0, pages)
	// Allocate frame by frame: physical contiguity is not required (the
	// IOMMU hides it), and page-wise allocation fragments less.
	for i := 0; i < pages; i++ {
		f, err := c.mem.AllocFrames(1)
		if err != nil {
			for _, ff := range frames {
				_ = c.mem.FreeFrames(ff, 1)
			}
			return deny("out of physical memory")
		}
		frames = append(frames, f)
	}
	apps[m.VA] = &allocation{owner: src, frames: frames, bytes: bytes}
	delete(c.freed, freeKey{m.App, m.VA})
	c.appBytes[m.App] += bytes
	c.stats.Allocs++
	c.stats.BytesLive += bytes
	out := make([]uint64, pages)
	for i, f := range frames {
		out[i] = uint64(f)
	}
	return &msg.AllocResp{App: m.App, OK: true, VA: m.VA, Frames: out, Perm: m.Perm}
}

func (c *Controller) onFree(env msg.Envelope) {
	m := env.Msg.(*msg.FreeReq)
	c.proc.Submit(c.cfg.OpCost, func() {
		resp := c.doFree(env.Src, m)
		c.dev.Send(env.Src, resp)
	})
}

func (c *Controller) doFree(src msg.DeviceID, m *msg.FreeReq) *msg.FreeResp {
	deny := func(reason string) *msg.FreeResp {
		c.stats.Denials++
		return &msg.FreeResp{App: m.App, OK: false, Reason: reason, VA: m.VA}
	}
	a, ok := c.table[m.App][m.VA]
	if !ok {
		// Idempotent replay: the first FreeResp was lost and the requester
		// retransmitted; the region is already gone because the first
		// request took effect.
		if fr, done := c.freed[freeKey{m.App, m.VA}]; done && fr.owner == src && fr.reqBytes == m.Bytes {
			return &msg.FreeResp{App: m.App, OK: true, VA: m.VA, Bytes: fr.bytes}
		}
		return deny("no such region")
	}
	if a.owner != src {
		return deny("not the owner")
	}
	if m.Bytes != 0 && m.Bytes != a.bytes &&
		uint64(pagesOf(m.Bytes))*physmem.PageSize != a.bytes {
		return deny("size mismatch")
	}
	per := 1
	if a.huge {
		per = iommu.HugeFrames
	}
	for _, f := range a.frames {
		if err := c.mem.FreeFrames(f, per); err != nil {
			return deny("frame table corruption: " + err.Error())
		}
	}
	delete(c.table[m.App], m.VA)
	c.appBytes[m.App] -= a.bytes
	c.freed[freeKey{m.App, m.VA}] = freedRegion{owner: src, reqBytes: m.Bytes, bytes: a.bytes}
	c.stats.Frees++
	c.stats.BytesLive -= a.bytes
	return &msg.FreeResp{App: m.App, OK: true, VA: m.VA, Bytes: a.bytes}
}

func (c *Controller) onAuth(env msg.Envelope) {
	m := env.Msg.(*msg.AuthReq)
	c.proc.Submit(c.cfg.OpCost, func() {
		resp := c.doAuth(env.Src, m)
		c.dev.Send(msg.BusID, resp)
	})
}

func (c *Controller) doAuth(src msg.DeviceID, m *msg.AuthReq) *msg.AuthResp {
	deny := func(reason string) *msg.AuthResp {
		c.stats.AuthsDenied++
		return &msg.AuthResp{App: m.App, OK: false, Reason: reason, VA: m.VA, Nonce: m.Nonce}
	}
	// Authorization queries come only from the bus.
	if src != msg.BusID {
		return deny("auth requests accepted only from the bus")
	}
	if m.Bytes == 0 || m.VA%physmem.PageSize != 0 {
		return deny("malformed range")
	}
	// Find the allocation containing [VA, VA+Bytes).
	regions := c.table[m.App]
	for _, base := range sortedBases(regions) {
		a := regions[base]
		if m.VA >= base && m.VA+m.Bytes <= base+a.bytes {
			if a.huge {
				// Huge regions are granted in whole 2 MiB runs only.
				if (m.VA-base)%iommu.HugePageSize != 0 || m.Bytes%iommu.HugePageSize != 0 {
					return deny("huge regions grant in whole 2MiB runs")
				}
				first := int((m.VA - base) / iommu.HugePageSize)
				n := int(m.Bytes / iommu.HugePageSize)
				out := make([]uint64, n)
				for i := 0; i < n; i++ {
					out[i] = uint64(a.frames[first+i])
				}
				c.stats.AuthsOK++
				return &msg.AuthResp{App: m.App, OK: true, VA: m.VA, Frames: out, Perm: m.Perm, Nonce: m.Nonce, Huge: true}
			}
			first := int((m.VA - base) / physmem.PageSize)
			n := pagesOf(m.Bytes)
			out := make([]uint64, n)
			for i := 0; i < n; i++ {
				out[i] = uint64(a.frames[first+i])
			}
			c.stats.AuthsOK++
			return &msg.AuthResp{App: m.App, OK: true, VA: m.VA, Frames: out, Perm: m.Perm, Nonce: m.Nonce}
		}
	}
	return deny("range not allocated to app")
}
