package memctrl

import (
	"testing"

	"nocpu/internal/iommu"
	"nocpu/internal/msg"
	"nocpu/internal/physmem"
	"nocpu/internal/sim"
)

// The system's central security invariant (§2.2): every mapping present
// in any device IOMMU is backed by a live allocation in the memory
// controller's tables, for the right app, and was installed by the bus
// either for the owner or under an explicit authorized grant. This test
// drives random sequences of alloc/grant/revoke/free from two devices and
// audits the invariant after every quiescent point, and at the end after
// freeing everything.

type auditOp struct {
	Kind   uint8 // 0 alloc, 1 grant, 2 revoke, 3 free
	Region uint8 // which region (of the ones allocated so far)
	App    uint8 // app selector (2 apps)
	Dev    uint8 // requester selector (2 devices)
}

type region struct {
	app    msg.AppID
	va     uint64
	bytes  uint64
	pages  int
	owner  int // index into devs
	grants map[int]bool
	freed  bool
}

func TestSecurityInvariantUnderRandomOps(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	for _, seed := range seeds {
		runInvariantSequence(t, seed, 60)
	}
}

func runInvariantSequence(t *testing.T, seed uint64, steps int) {
	t.Helper()
	w := newWorld(t, 0, 4096)
	devs := []*requester{
		w.newRequester(t, 2, "devA"),
		w.newRequester(t, 3, "devB"),
	}
	w.eng.Run()

	rng := sim.NewRand(seed)
	var regions []*region
	nextVA := map[msg.AppID]uint64{1: 0x1000_0000, 2: 0x2000_0000}

	live := func() []*region {
		var out []*region
		for _, r := range regions {
			if !r.freed {
				out = append(out, r)
			}
		}
		return out
	}

	for step := 0; step < steps; step++ {
		switch rng.Intn(4) {
		case 0: // alloc
			app := msg.AppID(rng.Intn(2) + 1)
			owner := rng.Intn(2)
			pages := rng.Intn(4) + 1
			va := nextVA[app]
			nextVA[app] += uint64(pages+1) * physmem.PageSize
			r := &region{app: app, va: va, bytes: uint64(pages) * physmem.PageSize,
				pages: pages, owner: owner, grants: map[int]bool{}}
			devs[owner].dev.Send(1, &msg.AllocReq{App: app, VA: va, Bytes: r.bytes, Perm: uint8(iommu.PermRW)})
			w.eng.Run()
			last := devs[owner].lastAlloc()
			if last == nil || !last.OK {
				t.Fatalf("seed %d step %d: alloc failed: %+v", seed, step, last)
			}
			regions = append(regions, r)
		case 1: // grant
			lv := live()
			if len(lv) == 0 {
				continue
			}
			r := lv[rng.Intn(len(lv))]
			target := 1 - r.owner
			if r.grants[target] {
				continue
			}
			devs[r.owner].dev.Send(msg.BusID, &msg.GrantReq{
				App: r.app, VA: r.va, Bytes: r.bytes, Target: devs[target].dev.ID(), Perm: uint8(iommu.PermRW)})
			w.eng.Run()
			g := devs[r.owner].grants[len(devs[r.owner].grants)-1]
			if !g.OK {
				t.Fatalf("seed %d step %d: grant denied: %s", seed, step, g.Reason)
			}
			r.grants[target] = true
		case 2: // revoke
			lv := live()
			if len(lv) == 0 {
				continue
			}
			r := lv[rng.Intn(len(lv))]
			var target int
			found := false
			for tg := range r.grants {
				target, found = tg, true
				break
			}
			if !found {
				continue
			}
			devs[r.owner].dev.Send(msg.BusID, &msg.RevokeReq{
				App: r.app, VA: r.va, Bytes: r.bytes, Target: devs[target].dev.ID()})
			w.eng.Run()
			delete(r.grants, target)
		case 3: // free
			lv := live()
			if len(lv) == 0 {
				continue
			}
			r := lv[rng.Intn(len(lv))]
			devs[r.owner].dev.Send(1, &msg.FreeReq{App: r.app, VA: r.va, Bytes: r.bytes})
			w.eng.Run()
			r.freed = true
			r.grants = map[int]bool{}
		}
		auditMappings(t, seed, step, devs, regions)
	}

	// Tear everything down; no mapping may survive.
	for _, r := range live() {
		devs[r.owner].dev.Send(1, &msg.FreeReq{App: r.app, VA: r.va, Bytes: r.bytes})
		w.eng.Run()
		r.freed = true
	}
	auditMappings(t, seed, steps, devs, regions)
	if got := w.ctrl.LiveAllocations(); got != 0 {
		t.Fatalf("seed %d: %d allocations leaked in controller", seed, got)
	}
}

// auditMappings checks every page of every region against the model.
func auditMappings(t *testing.T, seed uint64, step int, devs []*requester, regions []*region) {
	t.Helper()
	for _, r := range regions {
		for p := 0; p < r.pages; p++ {
			va := iommu.VirtAddr(r.va + uint64(p)*physmem.PageSize)
			for di, d := range devs {
				_, _, mapped := d.dev.IOMMU().Lookup(iommu.PASID(r.app), va)
				wantMapped := !r.freed && (di == r.owner || r.grants[di])
				if mapped != wantMapped {
					t.Fatalf("seed %d step %d: region app=%d va=%#x page %d on dev%d: mapped=%v want %v (freed=%v owner=%d grants=%v)",
						seed, step, r.app, r.va, p, di, mapped, wantMapped, r.freed, r.owner, r.grants)
				}
			}
		}
	}
}
