package memctrl

import (
	"strings"
	"testing"

	"nocpu/internal/bus"
	"nocpu/internal/device"
	"nocpu/internal/interconnect"
	"nocpu/internal/iommu"
	"nocpu/internal/msg"
	"nocpu/internal/physmem"
	"nocpu/internal/sim"
	"nocpu/internal/trace"
)

type world struct {
	eng  *sim.Engine
	mem  *physmem.Memory
	fab  *interconnect.Fabric
	bus  *bus.Bus
	tr   *trace.Tracer
	ctrl *Controller
}

func newWorld(t *testing.T, quota uint64, memPages uint64) *world {
	t.Helper()
	w := &world{eng: sim.NewEngine(), tr: trace.New(0)}
	w.mem = physmem.MustNew(memPages * physmem.PageSize)
	w.fab = interconnect.NewFabric(w.eng, w.mem, interconnect.DefaultCosts)
	w.bus = bus.New(w.eng, bus.DefaultConfig, w.tr)
	ctrl, err := New(w.eng, w.bus, w.fab, w.tr, Config{
		Device:      device.Config{ID: 1, Name: "memctrl"},
		QuotaPerApp: quota,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.ctrl = ctrl
	ctrl.Start()
	return w
}

type requester struct {
	dev    *device.Device
	allocs []*msg.AllocResp
	frees  []*msg.FreeResp
	grants []*msg.GrantResp
}

func (w *world) newRequester(t *testing.T, id msg.DeviceID, name string) *requester {
	t.Helper()
	d, err := device.New(w.eng, w.bus, w.fab, w.tr, device.Config{ID: id, Name: name, Role: msg.RoleNIC})
	if err != nil {
		t.Fatal(err)
	}
	r := &requester{dev: d}
	d.Handle(msg.KindAllocResp, func(e msg.Envelope) { r.allocs = append(r.allocs, e.Msg.(*msg.AllocResp)) })
	d.Handle(msg.KindFreeResp, func(e msg.Envelope) { r.frees = append(r.frees, e.Msg.(*msg.FreeResp)) })
	d.Handle(msg.KindGrantResp, func(e msg.Envelope) { r.grants = append(r.grants, e.Msg.(*msg.GrantResp)) })
	d.Start()
	return r
}

func (r *requester) lastAlloc() *msg.AllocResp {
	if len(r.allocs) == 0 {
		return nil
	}
	return r.allocs[len(r.allocs)-1]
}

func TestAllocHappyPath(t *testing.T) {
	w := newWorld(t, 0, 1024)
	nic := w.newRequester(t, 2, "nic")
	w.eng.Run()
	nic.dev.Send(1, &msg.AllocReq{App: 5, VA: 0x100000, Bytes: 3 * physmem.PageSize, Perm: uint8(iommu.PermRW)})
	w.eng.Run()
	a := nic.lastAlloc()
	if a == nil || !a.OK || len(a.Frames) != 3 {
		t.Fatalf("alloc = %+v", a)
	}
	// Bus must have programmed the NIC's IOMMU during forwarding.
	for i := range a.Frames {
		if _, _, ok := nic.dev.IOMMU().Lookup(5, iommu.VirtAddr(0x100000+i*physmem.PageSize)); !ok {
			t.Fatalf("page %d unmapped in requester IOMMU", i)
		}
	}
	st := w.ctrl.Stats()
	if st.Allocs != 1 || st.BytesLive != 3*physmem.PageSize {
		t.Errorf("stats = %+v", st)
	}
}

func TestAllocValidation(t *testing.T) {
	w := newWorld(t, 0, 1024)
	nic := w.newRequester(t, 2, "nic")
	w.eng.Run()
	cases := []struct {
		name string
		req  *msg.AllocReq
	}{
		{"zero app", &msg.AllocReq{App: 0, VA: 0x1000, Bytes: 4096}},
		{"zero bytes", &msg.AllocReq{App: 1, VA: 0x1000, Bytes: 0}},
		{"unaligned", &msg.AllocReq{App: 1, VA: 0x1001, Bytes: 4096}},
	}
	for _, c := range cases {
		nic.dev.Send(1, c.req)
		w.eng.Run()
		if a := nic.lastAlloc(); a == nil || a.OK {
			t.Errorf("%s: accepted (%+v)", c.name, a)
		}
	}
}

func TestAllocOverlapRejected(t *testing.T) {
	w := newWorld(t, 0, 1024)
	nic := w.newRequester(t, 2, "nic")
	w.eng.Run()
	nic.dev.Send(1, &msg.AllocReq{App: 1, VA: 0x10000, Bytes: 4 * physmem.PageSize})
	w.eng.Run()
	// Overlapping the middle of the first region.
	nic.dev.Send(1, &msg.AllocReq{App: 1, VA: 0x12000, Bytes: physmem.PageSize})
	w.eng.Run()
	if a := nic.lastAlloc(); a.OK {
		t.Error("overlapping alloc accepted")
	}
	// Same VA, different app: fine (separate address spaces).
	nic.dev.Send(1, &msg.AllocReq{App: 2, VA: 0x10000, Bytes: physmem.PageSize})
	w.eng.Run()
	if a := nic.lastAlloc(); !a.OK {
		t.Errorf("cross-app same-VA alloc rejected: %s", a.Reason)
	}
}

func TestQuotaEnforced(t *testing.T) {
	w := newWorld(t, 4*physmem.PageSize, 1024)
	nic := w.newRequester(t, 2, "nic")
	w.eng.Run()
	nic.dev.Send(1, &msg.AllocReq{App: 1, VA: 0x10000, Bytes: 3 * physmem.PageSize})
	w.eng.Run()
	if !nic.lastAlloc().OK {
		t.Fatal("first alloc rejected")
	}
	nic.dev.Send(1, &msg.AllocReq{App: 1, VA: 0x90000, Bytes: 2 * physmem.PageSize})
	w.eng.Run()
	if a := nic.lastAlloc(); a.OK || !strings.Contains(a.Reason, "quota") {
		t.Errorf("quota not enforced: %+v", a)
	}
	// Another app has its own quota.
	nic.dev.Send(1, &msg.AllocReq{App: 2, VA: 0x90000, Bytes: 2 * physmem.PageSize})
	w.eng.Run()
	if !nic.lastAlloc().OK {
		t.Error("second app blocked by first app's quota")
	}
}

func TestAllocExhaustionRollsBack(t *testing.T) {
	// Memory with ~16 usable frames (some consumed by page tables).
	w := newWorld(t, 0, 16)
	nic := w.newRequester(t, 2, "nic")
	w.eng.Run()
	before := w.mem.FreeFramesCount()
	nic.dev.Send(1, &msg.AllocReq{App: 1, VA: 0x10000, Bytes: 64 * physmem.PageSize})
	w.eng.Run()
	if a := nic.lastAlloc(); a.OK {
		t.Fatal("impossible alloc accepted")
	}
	// Nothing leaked (page-table frames for contexts may differ, so
	// compare against the pre-request count).
	if got := w.mem.FreeFramesCount(); got != before {
		t.Errorf("frames leaked: %d -> %d", before, got)
	}
}

func TestFreeFlow(t *testing.T) {
	w := newWorld(t, 0, 1024)
	nic := w.newRequester(t, 2, "nic")
	w.eng.Run()
	nic.dev.Send(1, &msg.AllocReq{App: 1, VA: 0x10000, Bytes: 2 * physmem.PageSize, Perm: uint8(iommu.PermRW)})
	w.eng.Run()
	live := w.ctrl.Stats().BytesLive
	nic.dev.Send(1, &msg.FreeReq{App: 1, VA: 0x10000, Bytes: 2 * physmem.PageSize})
	w.eng.Run()
	if len(nic.frees) != 1 || !nic.frees[0].OK {
		t.Fatalf("free = %+v", nic.frees)
	}
	if w.ctrl.Stats().BytesLive != live-2*physmem.PageSize {
		t.Error("BytesLive not reduced")
	}
	// Bus unmapped the requester.
	if _, _, ok := nic.dev.IOMMU().Lookup(1, 0x10000); ok {
		t.Error("mapping survives free")
	}
	// Double free denied.
	nic.dev.Send(1, &msg.FreeReq{App: 1, VA: 0x10000})
	w.eng.Run()
	if nic.frees[len(nic.frees)-1].OK {
		t.Error("double free accepted")
	}
}

// TestFreeRetransmissionReplayed: a FreeReq identical to one already
// completed (same owner, VA and byte count — what the NIC retry layer
// resends when the FreeResp was lost) is answered OK by replay without a
// second free, while TestFreeFlow's distinct double free stays denied.
func TestFreeRetransmissionReplayed(t *testing.T) {
	w := newWorld(t, 0, 1024)
	nic := w.newRequester(t, 2, "nic")
	w.eng.Run()
	nic.dev.Send(1, &msg.AllocReq{App: 1, VA: 0x10000, Bytes: 2 * physmem.PageSize})
	w.eng.Run()
	nic.dev.Send(1, &msg.FreeReq{App: 1, VA: 0x10000, Bytes: 2 * physmem.PageSize})
	w.eng.Run()
	nic.dev.Send(1, &msg.FreeReq{App: 1, VA: 0x10000, Bytes: 2 * physmem.PageSize})
	w.eng.Run()
	if len(nic.frees) != 2 || !nic.frees[0].OK || !nic.frees[1].OK {
		t.Fatalf("frees = %+v, want two OK responses", nic.frees)
	}
	if got := w.ctrl.Stats().Frees; got != 1 {
		t.Errorf("controller performed %d frees, want 1 (replay must not double-free)", got)
	}
	// Reallocating the VA evicts the replay record: a stale retransmission
	// arriving after that must not be confused with freeing the new region.
	nic.dev.Send(1, &msg.AllocReq{App: 1, VA: 0x10000, Bytes: 2 * physmem.PageSize})
	w.eng.Run()
	if !nic.lastAlloc().OK {
		t.Fatal("realloc failed")
	}
	nic.dev.Send(1, &msg.FreeReq{App: 1, VA: 0x10000, Bytes: 2 * physmem.PageSize})
	w.eng.Run()
	if got := w.ctrl.Stats().Frees; got != 2 {
		t.Errorf("frees = %d, want 2 (free of reallocated region must be real, not replayed)", got)
	}
}

func TestFreeByNonOwnerDenied(t *testing.T) {
	w := newWorld(t, 0, 1024)
	nic := w.newRequester(t, 2, "nic")
	other := w.newRequester(t, 3, "other")
	w.eng.Run()
	nic.dev.Send(1, &msg.AllocReq{App: 1, VA: 0x10000, Bytes: physmem.PageSize})
	w.eng.Run()
	other.dev.Send(1, &msg.FreeReq{App: 1, VA: 0x10000})
	w.eng.Run()
	if len(other.frees) != 1 || other.frees[0].OK {
		t.Errorf("non-owner free = %+v", other.frees)
	}
}

func TestGrantFlowWithRealController(t *testing.T) {
	w := newWorld(t, 0, 1024)
	nic := w.newRequester(t, 2, "nic")
	ssd := w.newRequester(t, 3, "ssd")
	w.eng.Run()
	nic.dev.Send(1, &msg.AllocReq{App: 1, VA: 0x10000, Bytes: 2 * physmem.PageSize, Perm: uint8(iommu.PermRW)})
	w.eng.Run()
	nic.dev.Send(msg.BusID, &msg.GrantReq{App: 1, VA: 0x10000, Bytes: 2 * physmem.PageSize, Target: 3, Perm: uint8(iommu.PermRW)})
	w.eng.Run()
	if len(nic.grants) != 1 || !nic.grants[0].OK {
		t.Fatalf("grant = %+v", nic.grants)
	}
	// SSD sees the same frames at the same VAs.
	for i := 0; i < 2; i++ {
		va := iommu.VirtAddr(0x10000 + i*physmem.PageSize)
		fNic, _, ok1 := nic.dev.IOMMU().Lookup(1, va)
		fSsd, _, ok2 := ssd.dev.IOMMU().Lookup(1, va)
		if !ok1 || !ok2 || fNic != fSsd {
			t.Fatalf("page %d not shared correctly", i)
		}
	}
	if w.ctrl.Stats().AuthsOK != 1 {
		t.Error("auth not counted")
	}
}

func TestGrantSubRange(t *testing.T) {
	w := newWorld(t, 0, 1024)
	nic := w.newRequester(t, 2, "nic")
	ssd := w.newRequester(t, 3, "ssd")
	w.eng.Run()
	nic.dev.Send(1, &msg.AllocReq{App: 1, VA: 0x10000, Bytes: 4 * physmem.PageSize, Perm: uint8(iommu.PermRW)})
	w.eng.Run()
	// Grant only the middle two pages.
	nic.dev.Send(msg.BusID, &msg.GrantReq{App: 1, VA: 0x11000, Bytes: 2 * physmem.PageSize, Target: 3, Perm: uint8(iommu.PermRW)})
	w.eng.Run()
	if len(nic.grants) != 1 || !nic.grants[0].OK {
		t.Fatalf("sub-range grant = %+v (bus owner record is per-base)", nic.grants)
	}
	if _, _, ok := ssd.dev.IOMMU().Lookup(1, 0x11000); !ok {
		t.Error("granted page missing")
	}
	if _, _, ok := ssd.dev.IOMMU().Lookup(1, 0x10000); ok {
		t.Error("ungranted page mapped")
	}
}

func TestAuthForUnallocatedRangeDenied(t *testing.T) {
	w := newWorld(t, 0, 1024)
	nic := w.newRequester(t, 2, "nic")
	w.newRequester(t, 3, "ssd")
	w.eng.Run()
	nic.dev.Send(1, &msg.AllocReq{App: 1, VA: 0x10000, Bytes: physmem.PageSize})
	w.eng.Run()
	// Range extends beyond the allocation: the bus's own range check
	// rejects it before the controller is even consulted.
	nic.dev.Send(msg.BusID, &msg.GrantReq{App: 1, VA: 0x10000, Bytes: 2 * physmem.PageSize, Target: 3})
	w.eng.Run()
	if len(nic.grants) != 1 || nic.grants[0].OK {
		t.Errorf("out-of-range grant = %+v", nic.grants)
	}
	if w.ctrl.Stats().AuthsOK != 0 {
		t.Error("controller authorized an out-of-range grant")
	}
}

func TestDirectAuthReqFromDeviceDenied(t *testing.T) {
	w := newWorld(t, 0, 1024)
	nic := w.newRequester(t, 2, "nic")
	got := make(chan *msg.AuthResp, 1)
	_ = got
	var resp *msg.AuthResp
	nic.dev.Handle(msg.KindAuthResp, func(e msg.Envelope) { resp = e.Msg.(*msg.AuthResp) })
	w.eng.Run()
	nic.dev.Send(1, &msg.AllocReq{App: 1, VA: 0x10000, Bytes: physmem.PageSize})
	w.eng.Run()
	// A device tries to get an authorization directly (bypassing the bus).
	nic.dev.Send(1, &msg.AuthReq{App: 1, VA: 0x10000, Bytes: physmem.PageSize, Target: 2, Nonce: 9})
	w.eng.Run()
	// The controller addresses its verdicts to the bus, so the device
	// must not receive one — and the bus drops unsolicited AuthResps.
	if resp != nil {
		t.Errorf("device received AuthResp: %+v", resp)
	}
}

func TestControllerOpCostSerializes(t *testing.T) {
	w := newWorld(t, 0, 4096)
	nic := w.newRequester(t, 2, "nic")
	w.eng.Run()
	// Two allocs back to back; completion spacing must reflect OpCost
	// serialization at the controller.
	for i := 0; i < 50; i++ {
		nic.dev.Send(1, &msg.AllocReq{App: 1, VA: uint64(0x100000 + i*0x10000), Bytes: physmem.PageSize})
	}
	w.eng.Run()
	if len(nic.allocs) != 50 {
		t.Fatalf("got %d responses", len(nic.allocs))
	}
	for _, a := range nic.allocs {
		if !a.OK {
			t.Fatalf("alloc failed: %s", a.Reason)
		}
	}
	if w.ctrl.LiveAllocations() != 50 {
		t.Errorf("live allocations = %d", w.ctrl.LiveAllocations())
	}
}
