package memctrl

import (
	"testing"

	"nocpu/internal/iommu"
	"nocpu/internal/msg"
	"nocpu/internal/physmem"
)

// End-to-end huge-page flows: alloc (controller runs + bus huge PTEs),
// grant, free — using the real bus interception path.

func TestHugeAllocProgramsHugePTEs(t *testing.T) {
	w := newWorld(t, 0, 4096) // 16 MiB
	nic := w.newRequester(t, 2, "nic")
	w.eng.Run()
	const va = uint64(2 * iommu.HugePageSize)
	nic.dev.Send(1, &msg.AllocReq{App: 5, VA: va, Bytes: 2 * iommu.HugePageSize, Perm: uint8(iommu.PermRW), Huge: true})
	w.eng.Run()
	a := nic.lastAlloc()
	if a == nil || !a.OK || !a.Huge || len(a.Frames) != 2 {
		t.Fatalf("huge alloc = %+v", a)
	}
	// A single translation covers any page within a run; only 3 walk
	// reads (short walk).
	pa, reads, err := nic.dev.IOMMU().Translate(5, iommu.VirtAddr(va+123456), iommu.AccessRead)
	if err != nil {
		t.Fatal(err)
	}
	if reads != 3 {
		t.Fatalf("huge walk reads = %d", reads)
	}
	wantBase := physmem.Frame(a.Frames[0]).Addr()
	if pa != physmem.Addr(uint64(wantBase)+123456) {
		t.Fatalf("pa = %#x", pa)
	}
	// Controller accounted 4 MiB.
	if live := w.ctrl.Stats().BytesLive; live != 2*iommu.HugePageSize {
		t.Fatalf("live = %d", live)
	}
	// Bus accounted in 4K units.
	if got := w.bus.Stats().PagesMapped; got != uint64(2*iommu.HugeFrames) {
		t.Fatalf("pages mapped = %d", got)
	}
}

func TestHugeAllocValidation(t *testing.T) {
	w := newWorld(t, 0, 4096)
	nic := w.newRequester(t, 2, "nic")
	w.eng.Run()
	// Unaligned VA refused.
	nic.dev.Send(1, &msg.AllocReq{App: 5, VA: 0x1000, Bytes: iommu.HugePageSize, Huge: true})
	w.eng.Run()
	if a := nic.lastAlloc(); a.OK {
		t.Fatal("unaligned huge alloc accepted")
	}
}

func TestHugeGrantAndFree(t *testing.T) {
	w := newWorld(t, 0, 8192) // 32 MiB
	nic := w.newRequester(t, 2, "nic")
	ssd := w.newRequester(t, 3, "ssd")
	w.eng.Run()
	const va = uint64(4 * iommu.HugePageSize)
	nic.dev.Send(1, &msg.AllocReq{App: 5, VA: va, Bytes: iommu.HugePageSize, Perm: uint8(iommu.PermRW), Huge: true})
	w.eng.Run()
	if !nic.lastAlloc().OK {
		t.Fatalf("alloc: %+v", nic.lastAlloc())
	}
	nic.dev.Send(msg.BusID, &msg.GrantReq{App: 5, VA: va, Bytes: iommu.HugePageSize, Target: 3, Perm: uint8(iommu.PermRW)})
	w.eng.Run()
	if len(nic.grants) != 1 || !nic.grants[0].OK {
		t.Fatalf("huge grant = %+v", nic.grants)
	}
	// Target sees the same frames via a huge mapping.
	fNic, _, ok1 := nic.dev.IOMMU().Lookup(5, iommu.VirtAddr(va+777))
	fSsd, _, ok2 := ssd.dev.IOMMU().Lookup(5, iommu.VirtAddr(va+777))
	if !ok1 || !ok2 || fNic != fSsd {
		t.Fatalf("grantee huge mapping wrong (ok=%v/%v)", ok1, ok2)
	}
	// Free removes it from both.
	nic.dev.Send(1, &msg.FreeReq{App: 5, VA: va})
	w.eng.Run()
	if _, _, ok := nic.dev.IOMMU().Lookup(5, iommu.VirtAddr(va)); ok {
		t.Fatal("owner huge mapping survives free")
	}
	if _, _, ok := ssd.dev.IOMMU().Lookup(5, iommu.VirtAddr(va)); ok {
		t.Fatal("grantee huge mapping survives free")
	}
	if w.ctrl.Stats().BytesLive != 0 {
		t.Fatalf("bytes live = %d", w.ctrl.Stats().BytesLive)
	}
	// Physical frames really returned: a fresh huge alloc succeeds.
	nic.dev.Send(1, &msg.AllocReq{App: 5, VA: va, Bytes: iommu.HugePageSize, Huge: true})
	w.eng.Run()
	if !nic.lastAlloc().OK {
		t.Fatalf("realloc after free: %+v", nic.lastAlloc())
	}
}

func TestHugeSubRangeGrantAlignment(t *testing.T) {
	w := newWorld(t, 0, 8192)
	nic := w.newRequester(t, 2, "nic")
	w.newRequester(t, 3, "ssd")
	w.eng.Run()
	const va = uint64(8 * iommu.HugePageSize)
	nic.dev.Send(1, &msg.AllocReq{App: 5, VA: va, Bytes: 2 * iommu.HugePageSize, Perm: uint8(iommu.PermRW), Huge: true})
	w.eng.Run()
	// Unaligned sub-range grant of a huge region is denied by the
	// controller.
	nic.dev.Send(msg.BusID, &msg.GrantReq{App: 5, VA: va + 4096, Bytes: 4096, Target: 3})
	w.eng.Run()
	if g := nic.grants[len(nic.grants)-1]; g.OK {
		t.Fatal("unaligned huge sub-grant accepted")
	}
	// An aligned whole-run sub-grant works.
	nic.dev.Send(msg.BusID, &msg.GrantReq{App: 5, VA: va + iommu.HugePageSize, Bytes: iommu.HugePageSize, Target: 3, Perm: uint8(iommu.PermRW)})
	w.eng.Run()
	if g := nic.grants[len(nic.grants)-1]; !g.OK {
		t.Fatalf("aligned huge sub-grant denied: %s", g.Reason)
	}
}
