// Package interconnect models the machine's data plane: the memory
// interconnect over which devices DMA to shared physical memory and ring
// each other's doorbells.
//
// §2.3 of "The Last CPU" requires the data plane (high-throughput memory
// access) to be separate from the control plane (the message-decoding
// system-management bus). This package is the data plane: it knows nothing
// about discovery, services or policy. Every DMA is translated through the
// issuing device's IOMMU, so isolation is enforced on the data path
// itself, not by convention.
//
// Notifications are modeled as the paper describes: "a memory write to a
// special address", like PCI MSI or an RDMA doorbell.
package interconnect

import (
	"fmt"

	"nocpu/internal/faultinject"
	"nocpu/internal/iommu"
	"nocpu/internal/metrics"
	"nocpu/internal/msg"
	"nocpu/internal/physmem"
	"nocpu/internal/sim"
)

// Costs hold the timing model for the data plane. Values are loosely
// calibrated to a PCIe-4.0-class fabric and DDR4 memory; the experiment
// harness sweeps the interesting ones.
type Costs struct {
	// LinkLatency is the one-way propagation latency of a DMA or doorbell.
	LinkLatency sim.Duration
	// BytesPerNs is link bandwidth (16 = 16 GB/s).
	BytesPerNs float64
	// TLBLookup is charged per translated page on a TLB hit.
	TLBLookup sim.Duration
	// WalkRead is charged per page-table read on a TLB miss.
	WalkRead sim.Duration
	// DoorbellLatency is the delivery latency of a doorbell write.
	DoorbellLatency sim.Duration
	// DMAWindow bounds each port's outstanding DMA transfers when > 0:
	// further transfers wait in a bounded port-local FIFO (4× the
	// window) and overflow fails the transfer with an OverloadError —
	// bounded queues with a deterministic shed policy instead of
	// unbounded engine backlog. 0 means unlimited, the pre-overload
	// behavior.
	DMAWindow int
}

// DefaultCosts is the baseline calibration used by the experiments.
var DefaultCosts = Costs{
	LinkLatency:     500 * sim.Nanosecond,
	BytesPerNs:      16,
	TLBLookup:       2 * sim.Nanosecond,
	WalkRead:        80 * sim.Nanosecond,
	DoorbellLatency: 400 * sim.Nanosecond,
}

// DoorbellAddr identifies a doorbell register. The paper's model is a
// write to a special physical address; we give each device a register
// block keyed by these addresses.
type DoorbellAddr uint64

// DoorbellHandler receives the written value at delivery time.
type DoorbellHandler func(value uint64)

// Fabric is the shared interconnect: one serialization domain per
// attached device port plus the doorbell address space.
type Fabric struct {
	eng   *sim.Engine
	mem   *physmem.Memory
	costs Costs
	bells map[DoorbellAddr]DoorbellHandler
	// nextBell hands out unique doorbell register addresses; the address
	// space is flat and never reused within a run.
	nextBell DoorbellAddr
	stats    FabricStats
	// plane, when set, judges every doorbell and DMA (fault injection);
	// nil is a pass-through.
	plane *faultinject.Plane
}

// FabricStats counts data-plane traffic.
type FabricStats struct {
	DMAs          uint64
	BytesMoved    uint64
	Doorbells     uint64
	Faults        uint64
	TotalDMATime  sim.Duration
	TotalWaitTime sim.Duration
	// DMAStalls counts transfers that waited for DMA-window capacity;
	// DMAShed counts transfers refused with an OverloadError because a
	// port's stall FIFO overflowed.
	DMAStalls uint64
	DMAShed   uint64
}

// NewFabric creates a fabric over mem with the given timing model.
func NewFabric(eng *sim.Engine, mem *physmem.Memory, costs Costs) *Fabric {
	if costs.BytesPerNs <= 0 {
		costs.BytesPerNs = DefaultCosts.BytesPerNs
	}
	return &Fabric{eng: eng, mem: mem, costs: costs, bells: make(map[DoorbellAddr]DoorbellHandler)}
}

// Memory exposes the backing physical memory. Only privileged components
// (the system bus, the memory controller) may use it directly; devices go
// through a Port.
func (f *Fabric) Memory() *physmem.Memory { return f.mem }

// Costs returns the timing model.
func (f *Fabric) Costs() Costs { return f.costs }

// Engine returns the simulation engine driving the fabric.
func (f *Fabric) Engine() *sim.Engine { return f.eng }

// Stats returns a copy of the traffic counters.
func (f *Fabric) Stats() FabricStats { return f.stats }

// SetFaultPlane installs the fault injector on the data plane
// (faultinject.LayerLink). A nil plane disables injection.
func (f *Fabric) SetFaultPlane(p *faultinject.Plane) { f.plane = p }

// InjectedError is the typed failure a DMA reports when the fault plane
// lost the transfer; callers distinguish it from translation faults.
type InjectedError struct{ Op string }

func (e *InjectedError) Error() string {
	return "interconnect: " + e.Op + " lost (injected fault)"
}

// OverloadError is the typed failure a DMA reports when the port's
// bounded stall FIFO overflowed: the transfer was shed, not lost — the
// caller knows immediately and can retry or surface the pushback.
type OverloadError struct{ Op string }

func (e *OverloadError) Error() string {
	return "interconnect: " + e.Op + " shed (DMA window full)"
}

// RegisterDoorbell binds a handler to a doorbell address. Registering an
// address twice is a wiring bug and panics.
func (f *Fabric) RegisterDoorbell(addr DoorbellAddr, h DoorbellHandler) {
	if _, dup := f.bells[addr]; dup {
		panic(fmt.Sprintf("interconnect: doorbell %#x registered twice", uint64(addr)))
	}
	f.bells[addr] = h
}

// AllocDoorbell reserves a fresh doorbell address and binds the handler.
// Devices allocate doorbells for their queue endpoints and advertise the
// addresses in ConnectReq messages.
func (f *Fabric) AllocDoorbell(h DoorbellHandler) DoorbellAddr {
	f.nextBell++
	addr := f.nextBell
	f.RegisterDoorbell(addr, h)
	return addr
}

// UnregisterDoorbell removes a doorbell binding (device teardown).
func (f *Fabric) UnregisterDoorbell(addr DoorbellAddr) { delete(f.bells, addr) }

// Ring posts a doorbell write. Delivery happens after the doorbell
// latency; an unregistered doorbell is silently dropped (the write lands
// in a dead register), matching hardware behaviour.
func (f *Fabric) Ring(addr DoorbellAddr, value uint64) {
	f.stats.Doorbells++
	lat := f.costs.DoorbellLatency
	deliver := func() {
		if h, ok := f.bells[addr]; ok {
			h(value)
		}
	}
	d := f.plane.Filter(faultinject.LayerLink, f.eng.Now(), 0, 0, msg.KindInvalid)
	switch d.Op {
	case faultinject.Drop:
		// A doorbell is a posted write that always lands eventually; the
		// closest physical fault is an arbitration stall. Demote Drop to a
		// long delay so a queue cannot hang forever on a lost notification.
		lat += d.Delay + 8*f.costs.DoorbellLatency
	case faultinject.Delay, faultinject.Reorder:
		lat += d.Delay
	case faultinject.Dup:
		// A doubled posted write: the handler runs twice (virtio handlers
		// tolerate spurious notifications by re-scanning the ring).
		f.eng.After(lat, deliver)
	}
	f.eng.After(lat, deliver)
}

// FaultHandler receives a translation fault delivered to the device (§4:
// "the IOMMU would deliver any faults to its attached device"). The
// handler must eventually call exactly one of retry (after resolving the
// fault, e.g. demand-allocating the page) or fail (to surface the error
// to the operation's callback).
type FaultHandler func(f *iommu.Fault, retry func(), fail func(error))

// Port is one device's attachment to the fabric: a DMA engine bound to
// that device's IOMMU. All transfers are expressed in device-virtual
// addresses within a PASID; the port translates page by page.
type Port struct {
	fab  *Fabric
	mmu  *iommu.IOMMU
	name string
	busy *sim.Server // serializes this device's DMA engine
	// faultHandler, when set, gets a chance to resolve not-present
	// faults (demand paging) before the operation fails.
	faultHandler FaultHandler
	// waiting holds transfers stalled on the DMA window (Costs.DMAWindow
	// > 0), FIFO, bounded at 4× the window; overflow sheds with an
	// OverloadError.
	waiting []func()
	waitG   *metrics.Gauge
}

// maxFaultRetries bounds demand-paging retries per operation: a handler
// that "resolves" without actually mapping cannot livelock the port.
const maxFaultRetries = 4

// SetFaultHandler installs the device's page-fault policy. Only
// not-present faults are offered to it; permission and addressing faults
// always fail the operation (they indicate bugs or revocations, not
// demand-paging opportunities).
func (p *Port) SetFaultHandler(h FaultHandler) { p.faultHandler = h }

// NewPort attaches a device (with its IOMMU) to the fabric.
func (f *Fabric) NewPort(name string, mmu *iommu.IOMMU) *Port {
	p := &Port{fab: f, mmu: mmu, name: name, busy: sim.NewServer(f.eng)}
	p.waitG = metrics.NewGauge(4 * f.costs.DMAWindow)
	return p
}

// WaitGauge exposes the DMA stall-FIFO depth for the overload audit.
func (p *Port) WaitGauge() *metrics.Gauge { return p.waitG }

// submitDMA admits a transfer to the port's DMA engine under the
// configured window: within the window it goes straight to the engine;
// past it the transfer waits in the bounded FIFO, and past the FIFO's
// bound it is shed. shed delivers the transfer's OverloadError; it runs
// after a link latency like any other data-plane failure.
func (p *Port) submitDMA(service sim.Duration, run func(), shed func()) {
	w := p.fab.costs.DMAWindow
	if w <= 0 {
		p.busy.Submit(service, run)
		return
	}
	launch := func(svc sim.Duration, fn func()) {
		p.busy.Submit(svc, func() {
			fn()
			p.drainDMA()
		})
	}
	if p.busy.Pending() < w {
		launch(service, run)
		return
	}
	if len(p.waiting) >= 4*w {
		p.fab.stats.DMAShed++
		p.fab.eng.After(p.fab.costs.LinkLatency, shed)
		return
	}
	p.fab.stats.DMAStalls++
	p.waiting = append(p.waiting, func() { launch(service, run) })
	p.waitG.Set(len(p.waiting))
}

// drainDMA moves stalled transfers into freed window slots, FIFO.
func (p *Port) drainDMA() {
	w := p.fab.costs.DMAWindow
	for len(p.waiting) > 0 && p.busy.Pending() < w {
		next := p.waiting[0]
		p.waiting[0] = nil
		p.waiting = p.waiting[1:]
		next()
	}
	if len(p.waiting) == 0 {
		p.waiting = nil
	}
	p.waitG.Set(len(p.waiting))
}

// IOMMU returns the port's translation unit (the bus programs it).
func (p *Port) IOMMU() *iommu.IOMMU { return p.mmu }

// Fabric returns the fabric this port attaches to (for doorbell access).
func (p *Port) Fabric() *Fabric { return p.fab }

// transferTime computes the service time of an n-byte transfer that
// performed walkReads page-table reads and touched pages pages.
func (p *Port) transferTime(n, pages, walkReads int) sim.Duration {
	c := p.fab.costs
	d := c.LinkLatency
	d += sim.Duration(float64(n) / c.BytesPerNs)
	d += sim.Duration(pages) * c.TLBLookup
	d += sim.Duration(walkReads) * c.WalkRead
	return d
}

// translateRange resolves [va, va+n) page by page, returning the physical
// extents and the total number of walk reads.
func (p *Port) translateRange(pasid iommu.PASID, va iommu.VirtAddr, n int, access iommu.Access) ([]extent, int, error) {
	var exts []extent
	walks := 0
	remaining := n
	cur := va
	for remaining > 0 {
		pa, reads, err := p.mmu.Translate(pasid, cur, access)
		walks += reads
		if err != nil {
			return nil, walks, err
		}
		pageEnd := (uint64(cur) &^ (physmem.PageSize - 1)) + physmem.PageSize
		chunk := int(pageEnd - uint64(cur))
		if chunk > remaining {
			chunk = remaining
		}
		exts = append(exts, extent{pa: pa, n: chunk})
		cur += iommu.VirtAddr(chunk)
		remaining -= chunk
	}
	return exts, walks, nil
}

type extent struct {
	pa physmem.Addr
	n  int
}

// dispatchFault routes a translation error either to the device's fault
// handler (not-present faults, retries remaining) or to fail. Fault
// delivery costs a link latency either way.
func (p *Port) dispatchFault(err error, attempts int, retry func(), fail func(error)) {
	p.fab.stats.Faults++
	f, isFault := err.(*iommu.Fault)
	p.fab.eng.After(p.fab.costs.LinkLatency, func() {
		// Not-present and bad-PASID faults are demand-resolvable (the
		// first touch of a fresh address space has no context yet);
		// permission and range faults are not.
		resolvable := isFault && (f.Reason == iommu.FaultNotPresent || f.Reason == iommu.FaultBadPASID)
		if resolvable && p.faultHandler != nil && attempts < maxFaultRetries {
			p.faultHandler(f, retry, fail)
			return
		}
		fail(err)
	})
}

// Read DMAs n bytes from (pasid, va) into a fresh buffer and delivers it
// to done. Translation faults are delivered through done's error; per §4
// the device must handle them itself — a registered FaultHandler may
// resolve not-present faults (demand paging) and retry transparently.
func (p *Port) Read(pasid iommu.PASID, va iommu.VirtAddr, n int, done func([]byte, error)) {
	p.read(pasid, va, n, done, 0)
}

func (p *Port) read(pasid iommu.PASID, va iommu.VirtAddr, n int, done func([]byte, error), attempts int) {
	if n < 0 {
		panic("interconnect: negative DMA length")
	}
	exts, walks, err := p.translateRange(pasid, va, n, iommu.AccessRead)
	if err != nil {
		p.dispatchFault(err, attempts,
			func() { p.read(pasid, va, n, done, attempts+1) },
			func(err error) { done(nil, err) })
		return
	}
	d := p.fab.plane.Filter(faultinject.LayerLink, p.fab.eng.Now(), 0, 0, msg.KindInvalid)
	if d.Op == faultinject.Drop {
		// The transfer is lost on the link; surface a typed error after
		// the propagation delay — §4: devices handle their own errors.
		p.fab.eng.After(p.fab.costs.LinkLatency, func() { done(nil, &InjectedError{Op: "DMA read"}) })
		return
	}
	wait := p.busy.Delay()
	service := p.transferTime(n, len(exts), walks)
	if d.Op == faultinject.Delay || d.Op == faultinject.Reorder {
		service += d.Delay
	}
	p.fab.stats.DMAs++
	p.fab.stats.BytesMoved += uint64(n)
	p.fab.stats.TotalDMATime += service
	p.fab.stats.TotalWaitTime += wait
	if d.Op == faultinject.Dup {
		// The duplicate transfer burns engine time and bandwidth; its data
		// is identical, so only the cost is observable.
		p.busy.Submit(service, func() {})
	}
	p.submitDMA(service, func() {
		buf := make([]byte, 0, n)
		for _, e := range exts {
			b, err := p.fab.mem.Read(e.pa, e.n)
			if err != nil {
				done(nil, err)
				return
			}
			buf = append(buf, b...)
		}
		done(buf, nil)
	}, func() { done(nil, &OverloadError{Op: "DMA read"}) })
}

// Write DMAs data to (pasid, va) and calls done when the write is visible
// in memory. Not-present faults may be resolved by the FaultHandler as in
// Read.
func (p *Port) Write(pasid iommu.PASID, va iommu.VirtAddr, data []byte, done func(error)) {
	p.write(pasid, va, data, done, 0)
}

func (p *Port) write(pasid iommu.PASID, va iommu.VirtAddr, data []byte, done func(error), attempts int) {
	exts, walks, err := p.translateRange(pasid, va, len(data), iommu.AccessWrite)
	if err != nil {
		p.dispatchFault(err, attempts,
			func() { p.write(pasid, va, data, done, attempts+1) },
			done)
		return
	}
	d := p.fab.plane.Filter(faultinject.LayerLink, p.fab.eng.Now(), 0, 0, msg.KindInvalid)
	if d.Op == faultinject.Drop {
		p.fab.eng.After(p.fab.costs.LinkLatency, func() { done(&InjectedError{Op: "DMA write"}) })
		return
	}
	wait := p.busy.Delay()
	service := p.transferTime(len(data), len(exts), walks)
	if d.Op == faultinject.Delay || d.Op == faultinject.Reorder {
		service += d.Delay
	}
	p.fab.stats.DMAs++
	p.fab.stats.BytesMoved += uint64(len(data))
	p.fab.stats.TotalDMATime += service
	p.fab.stats.TotalWaitTime += wait
	if d.Op == faultinject.Dup {
		p.busy.Submit(service, func() {})
	}
	// Capture the payload now: the caller may reuse its buffer.
	payload := make([]byte, len(data))
	copy(payload, data)
	p.submitDMA(service, func() {
		off := 0
		for _, e := range exts {
			if err := p.fab.mem.Write(e.pa, payload[off:off+e.n]); err != nil {
				done(err)
				return
			}
			off += e.n
		}
		done(nil)
	}, func() { done(&OverloadError{Op: "DMA write"}) })
}

// ReadU16 is a convenience single-field DMA read (ring indices).
func (p *Port) ReadU16(pasid iommu.PASID, va iommu.VirtAddr, done func(uint16, error)) {
	p.Read(pasid, va, 2, func(b []byte, err error) {
		if err != nil {
			done(0, err)
			return
		}
		done(uint16(b[0])|uint16(b[1])<<8, nil)
	})
}

// WriteU16 is a convenience single-field DMA write.
func (p *Port) WriteU16(pasid iommu.PASID, va iommu.VirtAddr, v uint16, done func(error)) {
	p.Write(pasid, va, []byte{byte(v), byte(v >> 8)}, done)
}

// Name returns the port's device name (for diagnostics).
func (p *Port) Name() string { return p.name }
