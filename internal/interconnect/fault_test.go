package interconnect

import (
	"errors"
	"testing"

	"nocpu/internal/iommu"
	"nocpu/internal/physmem"
)

// Fault-handler plumbing: not-present faults are offered to the handler,
// retries are bounded, and non-resolvable faults bypass it.

func TestFaultHandlerResolvesAndRetries(t *testing.T) {
	r := newRig(t, DefaultCosts)
	if err := r.mmu.CreateContext(1); err != nil {
		t.Fatal(err)
	}
	handled := 0
	r.port.SetFaultHandler(func(f *iommu.Fault, retry func(), fail func(error)) {
		handled++
		// Resolve by mapping the faulting page, then retry.
		fr, err := r.mem.AllocFrames(1)
		if err != nil {
			fail(err)
			return
		}
		if err := r.mmu.Map(1, f.Addr.Page(), fr, iommu.PermRW); err != nil {
			fail(err)
			return
		}
		retry()
	})
	var werr error
	done := false
	r.port.Write(1, 0x5000+17, []byte("demand"), func(err error) { werr, done = err, true })
	r.eng.Run()
	if !done || werr != nil {
		t.Fatalf("done=%v err=%v", done, werr)
	}
	if handled != 1 {
		t.Fatalf("handler invoked %d times", handled)
	}
	// The data landed.
	var got []byte
	r.port.Read(1, 0x5000+17, 6, func(b []byte, err error) { got = b })
	r.eng.Run()
	if string(got) != "demand" {
		t.Fatalf("got %q", got)
	}
}

func TestFaultHandlerRetryBound(t *testing.T) {
	r := newRig(t, DefaultCosts)
	if err := r.mmu.CreateContext(1); err != nil {
		t.Fatal(err)
	}
	attempts := 0
	// A broken handler that "resolves" without mapping anything: the
	// retry faults again; the port must give up after maxFaultRetries.
	r.port.SetFaultHandler(func(f *iommu.Fault, retry func(), fail func(error)) {
		attempts++
		retry()
	})
	var werr error
	r.port.Write(1, 0x5000, []byte{1}, func(err error) { werr = err })
	r.eng.Run()
	if werr == nil {
		t.Fatal("livelocked handler not cut off")
	}
	if attempts != maxFaultRetries {
		t.Fatalf("handler ran %d times, want %d", attempts, maxFaultRetries)
	}
}

func TestFaultHandlerNotOfferedPermissionFaults(t *testing.T) {
	r := newRig(t, DefaultCosts)
	r.mapPage(t, 1, 0x1000, iommu.AccessRead)
	called := false
	r.port.SetFaultHandler(func(f *iommu.Fault, retry func(), fail func(error)) {
		called = true
		fail(f)
	})
	var werr error
	r.port.Write(1, 0x1000, []byte{1}, func(err error) { werr = err })
	r.eng.Run()
	var fault *iommu.Fault
	if !errors.As(werr, &fault) || fault.Reason != iommu.FaultPermission {
		t.Fatalf("err = %v", werr)
	}
	if called {
		t.Fatal("permission fault offered to demand handler")
	}
}

func TestFaultHandlerFailPath(t *testing.T) {
	r := newRig(t, DefaultCosts)
	if err := r.mmu.CreateContext(1); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("policy says no")
	r.port.SetFaultHandler(func(f *iommu.Fault, retry func(), fail func(error)) {
		fail(sentinel)
	})
	var rerr error
	r.port.Read(1, 0x9000, 4, func(b []byte, err error) { rerr = err })
	r.eng.Run()
	if !errors.Is(rerr, sentinel) {
		t.Fatalf("err = %v", rerr)
	}
}

func TestFaultHandlerReadPartialRange(t *testing.T) {
	// A read spanning a mapped and an unmapped page: the handler fills
	// the hole and the whole read completes.
	r := newRig(t, DefaultCosts)
	f1 := r.mapPage(t, 1, 0x1000, iommu.PermRW)
	_ = f1
	r.port.SetFaultHandler(func(f *iommu.Fault, retry func(), fail func(error)) {
		fr, err := r.mem.AllocFrames(1)
		if err != nil {
			fail(err)
			return
		}
		if err := r.mmu.Map(1, f.Addr.Page(), fr, iommu.PermRW); err != nil {
			fail(err)
			return
		}
		retry()
	})
	payload := make([]byte, physmem.PageSize+100)
	for i := range payload {
		payload[i] = byte(i)
	}
	var werr error
	r.port.Write(1, 0x1000+physmem.PageSize-50, payload[:100], func(err error) { werr = err })
	r.eng.Run()
	if werr != nil {
		t.Fatal(werr)
	}
	var got []byte
	r.port.Read(1, 0x1000+physmem.PageSize-50, 100, func(b []byte, err error) { got = b; werr = err })
	r.eng.Run()
	if werr != nil || len(got) != 100 || got[0] != 0 || got[99] != 99 {
		t.Fatalf("cross-page demand read: err=%v len=%d", werr, len(got))
	}
}
