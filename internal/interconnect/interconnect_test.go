package interconnect

import (
	"bytes"
	"errors"
	"testing"

	"nocpu/internal/iommu"
	"nocpu/internal/physmem"
	"nocpu/internal/sim"
)

type rig struct {
	eng  *sim.Engine
	mem  *physmem.Memory
	fab  *Fabric
	port *Port
	mmu  *iommu.IOMMU
}

func newRig(t *testing.T, costs Costs) *rig {
	t.Helper()
	eng := sim.NewEngine()
	mem := physmem.MustNew(512 * physmem.PageSize)
	fab := NewFabric(eng, mem, costs)
	mmu := iommu.New("dev", mem, iommu.DefaultConfig)
	port := fab.NewPort("dev", mmu)
	return &rig{eng: eng, mem: mem, fab: fab, port: port, mmu: mmu}
}

func (r *rig) mapPage(t *testing.T, pasid iommu.PASID, va iommu.VirtAddr, perm iommu.Perm) physmem.Frame {
	t.Helper()
	if !r.mmu.HasContext(pasid) {
		if err := r.mmu.CreateContext(pasid); err != nil {
			t.Fatal(err)
		}
	}
	f, err := r.mem.AllocFrames(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.mmu.Map(pasid, va, f, perm); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestDMAWriteReadRoundTrip(t *testing.T) {
	r := newRig(t, DefaultCosts)
	r.mapPage(t, 1, 0x1000, iommu.PermRW)
	payload := []byte("hello, accelerator world")
	var readBack []byte
	r.port.Write(1, 0x1000+16, payload, func(err error) {
		if err != nil {
			t.Errorf("write: %v", err)
		}
		r.port.Read(1, 0x1000+16, len(payload), func(b []byte, err error) {
			if err != nil {
				t.Errorf("read: %v", err)
			}
			readBack = b
		})
	})
	r.eng.Run()
	if !bytes.Equal(readBack, payload) {
		t.Errorf("round trip = %q, want %q", readBack, payload)
	}
	st := r.fab.Stats()
	if st.DMAs != 2 || st.BytesMoved != uint64(2*len(payload)) {
		t.Errorf("stats = %+v", st)
	}
}

func TestDMACrossesPageBoundary(t *testing.T) {
	r := newRig(t, DefaultCosts)
	// Two virtually contiguous pages backed by (likely) discontiguous frames.
	f1 := r.mapPage(t, 1, 0x1000, iommu.PermRW)
	f2 := r.mapPage(t, 1, 0x2000, iommu.PermRW)
	if f1+1 == f2 {
		t.Log("frames happen to be contiguous; test still valid")
	}
	payload := make([]byte, 3000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var got []byte
	r.port.Write(1, 0x1000+2000, payload, func(err error) {
		if err != nil {
			t.Errorf("write: %v", err)
		}
		r.port.Read(1, 0x1000+2000, len(payload), func(b []byte, err error) {
			got = b
		})
	})
	r.eng.Run()
	if !bytes.Equal(got, payload) {
		t.Error("cross-page DMA corrupted data")
	}
	// Verify the split actually landed in both frames.
	a, _ := r.mem.Read(f1.Addr()+2000, 10)
	bEnd, _ := r.mem.Read(f2.Addr(), 10)
	if !bytes.Equal(a, payload[:10]) || !bytes.Equal(bEnd, payload[2096:2106]) {
		t.Error("payload not split across frames as expected")
	}
}

func TestDMAFaultDelivery(t *testing.T) {
	r := newRig(t, DefaultCosts)
	if err := r.mmu.CreateContext(1); err != nil {
		t.Fatal(err)
	}
	var gotErr error
	r.port.Read(1, 0x9000, 10, func(b []byte, err error) { gotErr = err })
	r.eng.Run()
	var fault *iommu.Fault
	if !errors.As(gotErr, &fault) || fault.Reason != iommu.FaultNotPresent {
		t.Errorf("err = %v", gotErr)
	}
	if r.fab.Stats().Faults != 1 {
		t.Error("fault not counted")
	}
}

func TestDMAPermissionEnforced(t *testing.T) {
	r := newRig(t, DefaultCosts)
	r.mapPage(t, 1, 0x1000, iommu.AccessRead)
	var gotErr error
	r.port.Write(1, 0x1000, []byte{1}, func(err error) { gotErr = err })
	r.eng.Run()
	var fault *iommu.Fault
	if !errors.As(gotErr, &fault) || fault.Reason != iommu.FaultPermission {
		t.Errorf("read-only page accepted write: %v", gotErr)
	}
}

func TestDMATimingModel(t *testing.T) {
	costs := Costs{
		LinkLatency: 100,
		BytesPerNs:  1, // 1 byte per ns
		TLBLookup:   0,
		WalkRead:    10,
	}
	r := newRig(t, costs)
	r.mapPage(t, 1, 0x1000, iommu.PermRW)
	var doneAt sim.Time
	// Cold translation: 4 walk reads. 64 bytes at 1 B/ns. 100ns latency.
	r.port.Write(1, 0x1000, make([]byte, 64), func(error) { doneAt = r.eng.Now() })
	r.eng.Run()
	want := sim.Time(100 + 64 + 4*10)
	if doneAt != want {
		t.Errorf("cold DMA completed at %v, want %v", doneAt, want)
	}
	// Warm translation: no walk reads.
	start := r.eng.Now()
	r.port.Write(1, 0x1000, make([]byte, 64), func(error) { doneAt = r.eng.Now() })
	r.eng.Run()
	if got := doneAt.Sub(start); got != 164 {
		t.Errorf("warm DMA took %v, want 164ns", got)
	}
}

func TestDMASerializationPerPort(t *testing.T) {
	costs := Costs{LinkLatency: 100, BytesPerNs: 1}
	r := newRig(t, costs)
	r.mapPage(t, 1, 0x1000, iommu.PermRW)
	// Warm the TLB so both transfers cost the same.
	r.port.Write(1, 0x1000, []byte{0}, func(error) {})
	r.eng.Run()
	start := r.eng.Now()
	var t1, t2 sim.Time
	r.port.Write(1, 0x1000, make([]byte, 100), func(error) { t1 = r.eng.Now() })
	r.port.Write(1, 0x1000, make([]byte, 100), func(error) { t2 = r.eng.Now() })
	r.eng.Run()
	if t1.Sub(start) != 200 {
		t.Errorf("first DMA at +%v, want +200", t1.Sub(start))
	}
	if t2.Sub(start) != 400 {
		t.Errorf("second DMA at +%v, want +400 (serialized)", t2.Sub(start))
	}
}

func TestDoorbellDelivery(t *testing.T) {
	r := newRig(t, DefaultCosts)
	var got uint64
	var at sim.Time
	r.fab.RegisterDoorbell(0x100, func(v uint64) { got = v; at = r.eng.Now() })
	r.fab.Ring(0x100, 42)
	r.eng.Run()
	if got != 42 {
		t.Errorf("doorbell value = %d", got)
	}
	if at != sim.Time(DefaultCosts.DoorbellLatency) {
		t.Errorf("delivered at %v, want %v", at, DefaultCosts.DoorbellLatency)
	}
}

func TestDoorbellUnregisteredDropped(t *testing.T) {
	r := newRig(t, DefaultCosts)
	r.fab.Ring(0x999, 1) // must not panic
	r.eng.Run()
	if r.fab.Stats().Doorbells != 1 {
		t.Error("ring not counted")
	}
}

func TestDoorbellDoubleRegisterPanics(t *testing.T) {
	r := newRig(t, DefaultCosts)
	r.fab.RegisterDoorbell(0x1, func(uint64) {})
	defer func() {
		if recover() == nil {
			t.Error("double register did not panic")
		}
	}()
	r.fab.RegisterDoorbell(0x1, func(uint64) {})
}

func TestDoorbellUnregister(t *testing.T) {
	r := newRig(t, DefaultCosts)
	fired := false
	r.fab.RegisterDoorbell(0x1, func(uint64) { fired = true })
	r.fab.UnregisterDoorbell(0x1)
	r.fab.Ring(0x1, 5)
	r.eng.Run()
	if fired {
		t.Error("unregistered doorbell fired")
	}
}

func TestU16Helpers(t *testing.T) {
	r := newRig(t, DefaultCosts)
	r.mapPage(t, 1, 0x1000, iommu.PermRW)
	var got uint16
	r.port.WriteU16(1, 0x1000+8, 0xbeef, func(err error) {
		if err != nil {
			t.Error(err)
		}
		r.port.ReadU16(1, 0x1000+8, func(v uint16, err error) { got = v })
	})
	r.eng.Run()
	if got != 0xbeef {
		t.Errorf("u16 round trip = %#x", got)
	}
}

func TestWriteBufferReuseSafe(t *testing.T) {
	r := newRig(t, DefaultCosts)
	r.mapPage(t, 1, 0x1000, iommu.PermRW)
	buf := []byte{1, 2, 3, 4}
	r.port.Write(1, 0x1000, buf, func(error) {})
	// Caller scribbles on the buffer before the DMA completes.
	buf[0] = 99
	var got []byte
	r.eng.Run()
	r.port.Read(1, 0x1000, 4, func(b []byte, err error) { got = b })
	r.eng.Run()
	if got[0] != 1 {
		t.Error("DMA write observed caller's post-submission scribble")
	}
}

func TestPasidIsolationOnPort(t *testing.T) {
	r := newRig(t, DefaultCosts)
	r.mapPage(t, 1, 0x1000, iommu.PermRW)
	if err := r.mmu.CreateContext(2); err != nil {
		t.Fatal(err)
	}
	var gotErr error
	r.port.Read(2, 0x1000, 4, func(b []byte, err error) { gotErr = err })
	r.eng.Run()
	if gotErr == nil {
		t.Error("PASID 2 read PASID 1's mapping")
	}
}
