package adversary_test

import (
	"reflect"
	"testing"

	"nocpu/internal/adversary"
	"nocpu/internal/bus"
	"nocpu/internal/core"
	"nocpu/internal/iommu"
	"nocpu/internal/msg"
	"nocpu/internal/physmem"
	"nocpu/internal/sim"
	"nocpu/internal/tenant"
	"nocpu/internal/trace"
)

// rig is the minimal battlefield: a bus with one victim device (tenant
// 1, app 100) and one adversary device (tenant 2, with a small credit
// budget so the flood and stale-credit paths exist).
type rig struct {
	eng    *sim.Engine
	bus    *bus.Bus
	reg    *tenant.Registry
	adv    *adversary.Device
	victim []msg.Envelope
}

func newRig(t *testing.T, seed uint64) *rig {
	t.Helper()
	r := &rig{eng: sim.NewEngine(), reg: tenant.NewRegistry()}
	mem := physmem.MustNew(1024 * physmem.PageSize)
	r.bus = bus.New(r.eng, bus.DefaultConfig, trace.New(0))
	r.reg.BindDevice(1, 1)
	r.reg.BindApp(100, 1)
	r.reg.SetBudget(2, tenant.Budget{CreditWindow: 2})
	r.bus.SetTenancy(r.reg)

	mmu := iommu.New("victim", mem, iommu.DefaultConfig)
	port, err := r.bus.Attach(1, "victim", msg.RoleAccelerator, mmu, func(env msg.Envelope) {
		r.victim = append(r.victim, env)
	})
	if err != nil {
		t.Fatal(err)
	}
	port.Send(msg.BusID, &msg.Hello{Role: msg.RoleAccelerator, Name: "victim"})

	r.adv, err = adversary.Attach(r.eng, r.bus, mem, r.reg, adversary.Config{
		ID: 2, Name: "mole", Tenant: 2, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	return r
}

// mount runs the full attack matrix against the rig's victim.
func (r *rig) mount() []adversary.Outcome {
	run := func() { r.eng.Run() }
	r.adv.AttackRogueDMA(100)
	r.adv.AttackStaleCredit(run)
	r.adv.AttackReplay(1, run)
	r.adv.AttackDiscovery("kvstore", run)
	r.adv.AttackFlood(1, 24, run)
	return r.adv.Outcomes()
}

// S1 at the unit level: every attack in the matrix is refused, and
// every refusal is typed — no silent drops, no partial successes.
func TestAttackMatrixAllRefused(t *testing.T) {
	r := newRig(t, 42)
	outcomes := r.mount()
	if len(outcomes) != 5 {
		t.Fatalf("outcomes = %d, want 5", len(outcomes))
	}
	for _, o := range outcomes {
		if !o.Refused {
			t.Errorf("%s: attack succeeded (%s)", o.Attack, o.Detail)
		}
		if !o.Typed {
			t.Errorf("%s: refusal not typed (%s)", o.Attack, o.Detail)
		}
	}
}

// S3 at the unit level: every denial the matrix produces is attributed
// to the attacking tenant; the victim's ledger stays clean.
func TestAttackMatrixAttribution(t *testing.T) {
	r := newRig(t, 42)
	r.mount()
	dens := r.reg.Denials()
	if len(dens) == 0 {
		t.Fatal("attack matrix produced no denial records")
	}
	for _, d := range dens {
		if d.Tenant != 2 {
			t.Errorf("denial %+v attributed to %v, want t2", d, d.Tenant)
		}
	}
	if got := r.reg.DenialsBy(1); len(got) != 0 {
		t.Errorf("victim accrued %d denials: %+v", len(got), got)
	}
}

// The adversary is seeded: the same seed mounts the same attack trace
// with identical outcomes, so E20 cells are reproducible.
func TestAttacksDeterministic(t *testing.T) {
	a := newRig(t, 7).mount()
	b := newRig(t, 7).mount()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

// The KVS probe rides a full machine: an adversary attached to a booted
// decentralized system probes another tenant's key prefix through the
// NIC edge and must see nothing but StatusDenied — existence of the
// keys included.
func TestKVSProbeThroughEdge(t *testing.T) {
	reg := tenant.NewRegistry()
	sys := core.MustNew(core.Options{Flavor: core.Decentralized, Tenancy: reg})
	if err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := sys.CreateFile("kv.dat", nil); err != nil {
		t.Fatal(err)
	}
	st := sys.NewKVS(core.KVSOptions{App: 10, File: "kv.dat"})
	if err := sys.WaitReady(st); err != nil {
		t.Fatal(err)
	}
	adv, err := adversary.Attach(sys.Eng, sys.Bus, sys.Mem, reg, adversary.Config{
		ID: 77, Tenant: 2, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Eng.Run()

	keys := []string{"t1/accounts", "t1/absent", "t1/orders/3", "t1/x"}
	o := adv.AttackKVSProbe(sys.NIC(), 10, keys, func() { sys.Eng.Run() })
	if !o.Refused || !o.Typed {
		t.Fatalf("kvs probe outcome %+v, want refused and typed", o)
	}
	dens := reg.DenialsBy(2)
	if len(dens) != len(keys) {
		t.Fatalf("denials by t2 = %d, want %d", len(dens), len(keys))
	}
	for _, d := range dens {
		if d.Class != tenant.DenyKVS || d.Victim != 1 {
			t.Errorf("denial %+v, want class kvs victim t1", d)
		}
	}
	if st.Stats().Denied != uint64(len(keys)) {
		t.Errorf("store Denied = %d, want %d", st.Stats().Denied, len(keys))
	}
}
