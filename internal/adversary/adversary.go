// Package adversary is E20's seeded malicious device: a bus endpoint
// bound to an attacking tenant that mounts, deterministically, every
// cross-tenant attack the tenancy layer claims to refuse — rogue DMA
// outside its isolation domain, replayed credit replenishments,
// stale-incarnation frame replay, discovery-broadcast abuse, doorbell
// floods past its budget, and cross-tenant KVS key probing.
//
// The device records one Outcome per attack. The S1 invariant requires
// every outcome to be Refused (the access never succeeded) and Typed
// (the refusal was a typed error, wire report, or attributed ledger
// record — never a silent drop). The tenancy ledger audits S2/S3 from
// the victim's goodput and the registry's attribution alongside.
//
// The adversary is malicious *firmware*, not malicious hardware: it
// still DMAs through its own IOMMU (the isolation-domain check lives in
// the translation unit, which firmware cannot bypass) and it still
// sends through its own bus port. What it forges is everything software
// can forge — PASIDs, incarnation stamps, broadcast queries, tenant
// claims inside payloads.
package adversary

import (
	"errors"
	"fmt"

	"nocpu/internal/bus"
	"nocpu/internal/iommu"
	"nocpu/internal/kvs"
	"nocpu/internal/msg"
	"nocpu/internal/physmem"
	"nocpu/internal/sim"
	"nocpu/internal/smartnic"
	"nocpu/internal/tenant"
)

// Config describes one adversary device.
type Config struct {
	ID     msg.DeviceID
	Name   string
	Tenant tenant.ID // the attacking tenant (must be nonzero)
	Seed   uint64    // per-attack determinism: same seed, same attack trace
}

// Outcome is the audited result of one mounted attack.
type Outcome struct {
	Attack  string       // which attack ("rogue-dma", "stale-credit", ...)
	Class   tenant.Class // the denial class the attack should produce
	Refused bool         // S1: the access never succeeded
	Typed   bool         // S1: the refusal was typed/attributed, not a silent drop
	Detail  string
}

// Device is the attached adversary. Each Attack* method mounts one
// attack and appends (and returns) its Outcome; run, where taken,
// advances the simulation so asynchronous refusals land.
type Device struct {
	cfg  Config
	eng  *sim.Engine
	bus  *bus.Bus
	reg  *tenant.Registry
	mmu  *iommu.IOMMU
	port *bus.Port
	rnd  *sim.Rand

	inbox    []msg.Envelope
	outcomes []Outcome
}

// Attach connects an adversary device to the bus, binds it to its
// tenant, installs the isolation-domain check on its translation unit
// (the hardware half the firmware cannot disable), and announces it
// with a Hello so the bus marks it alive.
func Attach(eng *sim.Engine, b *bus.Bus, mem *physmem.Memory, reg *tenant.Registry, cfg Config) (*Device, error) {
	if cfg.Tenant == 0 {
		return nil, fmt.Errorf("adversary: must be bound to a tenant")
	}
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("adversary-%d", cfg.ID)
	}
	d := &Device{
		cfg: cfg,
		eng: eng,
		bus: b,
		reg: reg,
		rnd: sim.NewRand(cfg.Seed ^ 0xad5e),
	}
	d.mmu = iommu.New(cfg.Name, mem, iommu.DefaultConfig)
	check := reg.DomainCheckFor(cfg.ID)
	d.mmu.SetDomainCheck(func(p iommu.PASID) error {
		err := check(msg.AppID(p))
		var terr *tenant.Error
		if errors.As(err, &terr) {
			reg.RecordError(eng.Now(), terr)
		}
		return err
	})
	port, err := b.Attach(cfg.ID, cfg.Name, msg.RoleAccelerator, d.mmu, func(env msg.Envelope) {
		d.inbox = append(d.inbox, env)
	})
	if err != nil {
		return nil, err
	}
	d.port = port
	reg.BindDevice(cfg.ID, cfg.Tenant)
	port.Send(msg.BusID, &msg.Hello{Role: msg.RoleAccelerator, Name: cfg.Name})
	return d, nil
}

// Port exposes the adversary's bus port (testing, budget setup).
func (d *Device) Port() *bus.Port { return d.port }

// IOMMU exposes the adversary's translation unit (testing).
func (d *Device) IOMMU() *iommu.IOMMU { return d.mmu }

// Outcomes returns every attack mounted so far, in order.
func (d *Device) Outcomes() []Outcome { return d.outcomes }

func (d *Device) note(o Outcome) Outcome {
	d.outcomes = append(d.outcomes, o)
	return o
}

// countKind tallies inbox envelopes of one kind.
func (d *Device) countKind(k msg.Kind) int {
	n := 0
	for _, e := range d.inbox {
		if e.Msg.Kind() == k {
			n++
		}
	}
	return n
}

// denialReports tallies wire DenialReports of one class in the inbox.
func (d *Device) denialReports(c tenant.Class) int {
	n := 0
	for _, e := range d.inbox {
		if dr, ok := e.Msg.(*msg.DenialReport); ok && tenant.Class(dr.Class) == c {
			n++
		}
	}
	return n
}

// denialsOf tallies registry denials attributed to this tenant with the
// given class.
func (d *Device) denialsOf(c tenant.Class) int {
	n := 0
	for _, den := range d.reg.DenialsBy(d.cfg.Tenant) {
		if den.Class == c {
			n++
		}
	}
	return n
}

// AttackRogueDMA tries to reach a foreign app's memory through the
// device's own translation unit: first by instantiating a context for
// the victim's PASID, then by walking an address under that PASID
// anyway. Both must fail typed — the first with the registry's
// *tenant.Error from the domain check, the second with an *iommu.Fault
// (no context exists, because the domain check refused it).
func (d *Device) AttackRogueDMA(victim msg.AppID) Outcome {
	o := Outcome{Attack: "rogue-dma", Class: tenant.DenyDMA}
	cerr := d.mmu.CreateContext(iommu.PASID(victim))
	var terr *tenant.Error
	typedCreate := errors.As(cerr, &terr)
	va := iommu.VirtAddr(uint64(d.rnd.Intn(1<<20)) * physmem.PageSize)
	_, _, werr := d.mmu.Translate(iommu.PASID(victim), va, iommu.AccessWrite)
	var fault *iommu.Fault
	typedWalk := errors.As(werr, &fault)
	o.Refused = cerr != nil && werr != nil && !d.mmu.HasContext(iommu.PASID(victim))
	o.Typed = typedCreate && typedWalk
	o.Detail = fmt.Sprintf("create: %v; walk: %v", cerr, werr)
	return d.note(o)
}

// AttackStaleCredit replays a credit replenishment captured from the
// device's previous incarnation: it records the current incarnation,
// crashes and rejoins (bumping it), then feeds the port a replenish
// fenced to the old life. The fence must drop it typed — credits
// unchanged, StaleCreditDropped counted, DenyStaleCredit attributed.
// The attacker needs a per-tenant credit window for the replenish path
// to exist at all.
func (d *Device) AttackStaleCredit(run func()) Outcome {
	o := Outcome{Attack: "stale-credit", Class: tenant.DenyStaleCredit}
	oldInc := d.port.Incarnation()
	d.port.NewIncarnation()
	d.port.Send(msg.BusID, &msg.Hello{Role: msg.RoleAccelerator, Name: d.cfg.Name, Incarnation: d.port.Incarnation()})
	run()

	staleBefore := d.bus.Stats().StaleCreditDropped
	denBefore := d.denialsOf(tenant.DenyStaleCredit)
	credBefore := d.port.Credits()
	d.port.AddCredits(64, oldInc) // the captured replenish, replayed
	staleDelta := d.bus.Stats().StaleCreditDropped - staleBefore
	o.Refused = d.port.Credits() == credBefore && staleDelta == 1
	o.Typed = staleDelta == 1 && d.denialsOf(tenant.DenyStaleCredit) == denBefore+1
	o.Detail = fmt.Sprintf("credits %d unchanged=%v, stale drops +%d", credBefore,
		d.port.Credits() == credBefore, staleDelta)
	return d.note(o)
}

// AttackReplay injects a captured frame stamped with the device's
// previous incarnation straight onto the wire (bus.Replay models the
// capture-and-replay). The bus must fence it as dead-sender traffic —
// DeadSenderDropped counted, DenyStaleReplay attributed — and the
// victim must never see it.
func (d *Device) AttackReplay(victim msg.DeviceID, run func()) Outcome {
	o := Outcome{Attack: "stale-replay", Class: tenant.DenyStaleReplay}
	if d.port.Incarnation() == 0 {
		d.port.NewIncarnation()
		d.port.Send(msg.BusID, &msg.Hello{Role: msg.RoleAccelerator, Name: d.cfg.Name, Incarnation: d.port.Incarnation()})
		run()
	}
	captured := msg.Envelope{
		Src: d.cfg.ID,
		Dst: victim,
		Seq: uint32(1000 + d.rnd.Intn(1000)),
		Inc: d.port.Incarnation() - 1,
		Msg: &msg.Heartbeat{Seq: uint64(d.rnd.Intn(1 << 16))},
	}
	fencedBefore := d.bus.Stats().DeadSenderDropped
	denBefore := d.denialsOf(tenant.DenyStaleReplay)
	d.bus.Replay(captured)
	run()
	fencedDelta := d.bus.Stats().DeadSenderDropped - fencedBefore
	o.Refused = fencedDelta >= 1
	o.Typed = d.denialsOf(tenant.DenyStaleReplay) > denBefore
	o.Detail = fmt.Sprintf("replayed inc %d, fenced +%d", captured.Inc, fencedDelta)
	return d.note(o)
}

// AttackDiscovery broadcasts a service-discovery probe hoping to
// enumerate other tenants' devices. The bus must scope the broadcast to
// the adversary's own domain (plus untenanted infrastructure) and tell
// it so with a DenialReport — no device in a foreign tenant may answer,
// or even see the probe.
func (d *Device) AttackDiscovery(query string, run func()) Outcome {
	o := Outcome{Attack: "discovery-abuse", Class: tenant.DenyDiscovery}
	before := len(d.inbox)
	reportsBefore := d.denialReports(tenant.DenyDiscovery)
	d.port.Send(msg.Broadcast, &msg.DiscoverReq{Query: query, Nonce: uint32(d.rnd.Intn(1 << 30))})
	run()
	foreign := 0
	for _, e := range d.inbox[before:] {
		if _, ok := e.Msg.(*msg.DiscoverResp); !ok {
			continue
		}
		if t := d.reg.DeviceTenant(e.Src); t != 0 && t != d.cfg.Tenant {
			foreign++
		}
	}
	o.Refused = foreign == 0
	o.Typed = d.denialReports(tenant.DenyDiscovery) > reportsBefore
	o.Detail = fmt.Sprintf("foreign answers %d, denial reports +%d", foreign,
		d.denialReports(tenant.DenyDiscovery)-reportsBefore)
	return d.note(o)
}

// AttackFlood hammers a victim device with n back-to-back doorbell
// messages, far past the adversary's per-tenant credit window. The
// window must contain the flood at the attacker's own port — overflow
// dropped from its bounded stall queue, DenyBudget attributed to the
// attacker, its stall gauge never exceeding the bound.
func (d *Device) AttackFlood(victim msg.DeviceID, n int, run func()) Outcome {
	o := Outcome{Attack: "doorbell-flood", Class: tenant.DenyBudget}
	stBefore := d.bus.Stats()
	denBefore := d.denialsOf(tenant.DenyBudget)
	for i := 0; i < n; i++ {
		d.port.Send(victim, &msg.Heartbeat{Seq: uint64(i)})
	}
	run()
	st := d.bus.Stats()
	dropped := st.StallDropped - stBefore.StallDropped
	stalled := st.CreditStalls - stBefore.CreditStalls
	o.Refused = dropped > 0 && !d.port.StallGauge().Exceeded()
	o.Typed = d.denialsOf(tenant.DenyBudget) > denBefore
	o.Detail = fmt.Sprintf("%d sent, %d stalled, %d dropped at the attacker's port", n, stalled, dropped)
	return d.note(o)
}

// AttackKVSProbe sends cross-tenant key probes (reads, overwrites,
// deletes against another tenant's prefix) into a store through the NIC
// edge, stamped — authentically, by the edge — with the adversary's own
// tenant. Every probe must come back StatusDenied: StatusOK is a
// breach, and StatusNotFound would leak key existence.
func (d *Device) AttackKVSProbe(nic *smartnic.NIC, app msg.AppID, keys []string, run func()) Outcome {
	o := Outcome{Attack: "kvs-probe", Class: tenant.DenyKVS}
	denied, shed, leaked, lost := 0, 0, 0, len(keys)
	for _, k := range keys {
		var req kvs.Request
		switch d.rnd.Intn(3) {
		case 0:
			req = kvs.Request{Op: kvs.OpGet, Key: k}
		case 1:
			req = kvs.Request{Op: kvs.OpPut, Key: k, Value: []byte("owned")}
		default:
			req = kvs.Request{Op: kvs.OpDelete, Key: k}
		}
		nic.DeliverFrom(uint16(d.cfg.Tenant), app, kvs.EncodeRequest(req), func(b []byte) {
			lost--
			r, err := kvs.DecodeResponse(b)
			if err != nil {
				return
			}
			switch r.Status {
			case kvs.StatusDenied:
				denied++
			case kvs.StatusShed:
				shed++ // the probe burst tripping the prober's own admission budget
			case kvs.StatusOK, kvs.StatusNotFound:
				leaked++
			}
		})
	}
	run()
	o.Refused = leaked == 0
	o.Typed = denied > 0 && denied+shed == len(keys) && lost == 0
	o.Detail = fmt.Sprintf("%d probes: %d denied, %d shed, %d leaked, %d unanswered",
		len(keys), denied, shed, leaked, lost)
	return d.note(o)
}
