package admin

import (
	"bytes"
	"testing"
	"testing/quick"

	"nocpu/internal/core"
	"nocpu/internal/kvs"
	"nocpu/internal/sim"
)

const (
	opToken     = uint64(0xAD417)
	loaderToken = uint64(0x10AD)
)

type world struct {
	sys     *core.System
	console *Console
	store   *kvs.Store
}

func newWorld(t *testing.T) *world {
	t.Helper()
	opts := core.Options{Flavor: core.Decentralized, Seed: 23}
	opts.SSD.LoaderToken = loaderToken
	sys := core.MustNew(opts)
	if err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := sys.CreateFile("kv.dat", nil); err != nil {
		t.Fatal(err)
	}
	store := sys.NewKVS(core.KVSOptions{App: 1, File: "kv.dat"})
	if err := sys.WaitReady(store); err != nil {
		t.Fatal(err)
	}
	console := New(Config{
		App: 2, Token: opToken,
		LogFile: "kv.dat", Memctrl: core.ControlID,
		Loader: core.FirstSSD, LoaderToken: loaderToken,
	})
	sys.NIC().AddApp(console)
	deadline := sys.Eng.Now().Add(sim.Second)
	for !console.Ready() && sys.Eng.Now() < deadline {
		sys.Eng.RunFor(100 * sim.Microsecond)
	}
	if !console.Ready() {
		t.Fatal("console never connected to the log")
	}
	return &world{sys: sys, console: console, store: store}
}

func (w *world) cmd(t *testing.T, req Request) Response {
	t.Helper()
	var resp Response
	done := false
	w.sys.NIC().Deliver(2, EncodeRequest(req), func(b []byte) {
		r, err := DecodeResponse(b)
		if err != nil {
			t.Fatal(err)
		}
		resp, done = r, true
	})
	deadline := w.sys.Eng.Now().Add(sim.Second)
	for !done && w.sys.Eng.Now() < deadline {
		w.sys.Eng.RunFor(50 * sim.Microsecond)
	}
	if !done {
		t.Fatal("command did not complete")
	}
	return resp
}

func (w *world) kvPut(t *testing.T, key, val string) {
	t.Helper()
	done := false
	w.sys.NIC().Deliver(1, kvs.EncodeRequest(kvs.Request{Op: kvs.OpPut, Key: key, Value: []byte(val)}), func(b []byte) {
		done = true
	})
	for !done {
		w.sys.Eng.RunFor(50 * sim.Microsecond)
	}
}

func TestAuthenticationGate(t *testing.T) {
	w := newWorld(t)
	if r := w.cmd(t, Request{Op: OpPing, Token: 0xBAD}); r.Status != StatusAuthFailed {
		t.Fatalf("bad token: %+v", r)
	}
	if r := w.cmd(t, Request{Op: OpPing, Token: opToken}); r.Status != StatusOK {
		t.Fatalf("good token: %+v", r)
	}
	if w.console.AuthFailures != 1 {
		t.Errorf("auth failures = %d", w.console.AuthFailures)
	}
}

func TestRemoteLogAccess(t *testing.T) {
	w := newWorld(t)
	// The KVS writes its log; the operator reads it remotely.
	w.kvPut(t, "alpha", "first-entry")
	w.kvPut(t, "beta", "second-entry")

	st := w.cmd(t, Request{Op: OpStatLog, Token: opToken})
	if st.Status != StatusOK || st.Size == 0 {
		t.Fatalf("stat: %+v", st)
	}
	tail := w.cmd(t, Request{Op: OpTailLog, Token: opToken, N: 64})
	if tail.Status != StatusOK {
		t.Fatalf("tail: %+v", tail)
	}
	if !bytes.Contains(tail.Data, []byte("second-entry")) {
		t.Fatalf("tail does not contain the latest record: %q", tail.Data)
	}
	// Tail of an over-long request clips to the log size / max IO.
	big := w.cmd(t, Request{Op: OpTailLog, Token: opToken, N: 1 << 30})
	if big.Status != StatusOK || uint64(len(big.Data)) > big.Size {
		t.Fatalf("clipped tail: %+v", big)
	}
}

func TestRemoteImageUpload(t *testing.T) {
	w := newWorld(t)
	image := bytes.Repeat([]byte{0xF0}, 5000)
	r := w.cmd(t, Request{Op: OpUpload, Token: opToken, Name: "fw.bin", Data: image})
	if r.Status != StatusOK {
		t.Fatalf("upload: %+v (%s)", r, r.Data)
	}
	f, ok := w.sys.SSD().FS().Lookup("fw.bin")
	if !ok || f.Size() != uint64(len(image)) {
		t.Fatalf("image not on volume (ok=%v)", ok)
	}
	// The console holds the loader credential; the operator token alone
	// protects the path end to end (a wrong operator token never reaches
	// the loader).
	if r := w.cmd(t, Request{Op: OpUpload, Token: 1, Name: "evil.bin", Data: []byte{1}}); r.Status != StatusAuthFailed {
		t.Fatalf("unauthenticated upload: %+v", r)
	}
}

func TestUnknownOpAndMalformed(t *testing.T) {
	w := newWorld(t)
	if r := w.cmd(t, Request{Op: 99, Token: opToken}); r.Status != StatusError {
		t.Fatalf("unknown op: %+v", r)
	}
	// Malformed bytes must produce an error response, not silence.
	var resp Response
	done := false
	w.sys.NIC().Deliver(2, []byte{1, 2, 3}, func(b []byte) {
		resp, _ = DecodeResponse(b)
		done = true
	})
	for !done {
		w.sys.Eng.RunFor(50 * sim.Microsecond)
	}
	if resp.Status != StatusError {
		t.Fatalf("malformed: %+v", resp)
	}
}

func TestProtoRoundTripProperty(t *testing.T) {
	f := func(op uint8, token uint64, n uint32, name string, data []byte) bool {
		if len(name) > 65000 {
			name = name[:65000]
		}
		req := Request{Op: Op(op), Token: token, N: n, Name: name, Data: data}
		got, err := DecodeRequest(EncodeRequest(req))
		if err != nil {
			return false
		}
		if got.Op != req.Op || got.Token != token || got.N != n || got.Name != name {
			return false
		}
		if len(data) == 0 {
			return len(got.Data) == 0
		}
		return bytes.Equal(got.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	g := func(status uint8, size uint64, data []byte) bool {
		resp := Response{Status: Status(status), Size: size, Data: data}
		got, err := DecodeResponse(EncodeResponse(resp))
		if err != nil || got.Status != resp.Status || got.Size != size {
			return false
		}
		if len(data) == 0 {
			return len(got.Data) == 0
		}
		return bytes.Equal(got.Data, data)
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	if _, err := DecodeRequest(nil); err == nil {
		t.Error("nil request decoded")
	}
	if _, err := DecodeResponse([]byte{1}); err == nil {
		t.Error("short response decoded")
	}
}
