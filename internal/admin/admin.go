// Package admin implements §4's "System Maintenance" story: the CPU-less
// machine "will not have a local console", so an operator manages it
// remotely — "the logs could be accessed remotely by another machine over
// the network through a remote access service. User authentication can be
// performed by an authentication service running on any device."
//
// The admin console is itself just an application offloaded to the smart
// NIC: it authenticates operator requests by token, reads log files from
// the smart SSD over the ordinary data plane, reports device statistics,
// and forwards authenticated image uploads to device loader services
// (§2.1). Nothing about management requires a CPU either.
package admin

import (
	"encoding/binary"
	"fmt"

	"nocpu/internal/msg"
	"nocpu/internal/smartnic"
)

// Op is an admin command opcode.
type Op uint8

// Admin operations.
const (
	OpPing    Op = iota + 1
	OpStatLog    // -> current log size
	OpTailLog    // args: n u32 -> last n bytes of the log
	OpUpload     // args: image name + bytes -> forwarded to loader
)

// Status codes.
type Status uint8

// Response statuses.
const (
	StatusOK Status = iota
	StatusAuthFailed
	StatusUnavailable
	StatusError
)

// Request is a decoded admin command.
type Request struct {
	Op    Op
	Token uint64
	N     uint32 // tail length
	Name  string // upload image name
	Data  []byte // upload payload
}

// Response is a decoded admin reply.
type Response struct {
	Status Status
	Size   uint64
	Data   []byte
}

// EncodeRequest serializes a command.
func EncodeRequest(r Request) []byte {
	b := make([]byte, 15+2+len(r.Name)+4+len(r.Data))
	b[0] = byte(r.Op)
	binary.LittleEndian.PutUint64(b[1:], r.Token)
	binary.LittleEndian.PutUint32(b[9:], r.N)
	binary.LittleEndian.PutUint16(b[13:], uint16(len(r.Name)))
	copy(b[15:], r.Name)
	off := 15 + len(r.Name)
	binary.LittleEndian.PutUint32(b[off:], uint32(len(r.Data)))
	copy(b[off+4:], r.Data)
	return b
}

// DecodeRequest parses a command.
func DecodeRequest(b []byte) (Request, error) {
	if len(b) < 19 {
		return Request{}, fmt.Errorf("admin: short request")
	}
	nameLen := int(binary.LittleEndian.Uint16(b[13:]))
	if len(b) < 19+nameLen {
		return Request{}, fmt.Errorf("admin: truncated name")
	}
	r := Request{
		Op:    Op(b[0]),
		Token: binary.LittleEndian.Uint64(b[1:]),
		N:     binary.LittleEndian.Uint32(b[9:]),
		Name:  string(b[15 : 15+nameLen]),
	}
	off := 15 + nameLen
	dataLen := int(binary.LittleEndian.Uint32(b[off:]))
	if len(b) < off+4+dataLen {
		return Request{}, fmt.Errorf("admin: truncated data")
	}
	if dataLen > 0 {
		r.Data = append([]byte(nil), b[off+4:off+4+dataLen]...)
	}
	return r, nil
}

// EncodeResponse serializes a reply.
func EncodeResponse(r Response) []byte {
	b := make([]byte, 13+len(r.Data))
	b[0] = byte(r.Status)
	binary.LittleEndian.PutUint64(b[1:], r.Size)
	binary.LittleEndian.PutUint32(b[9:], uint32(len(r.Data)))
	copy(b[13:], r.Data)
	return b
}

// DecodeResponse parses a reply.
func DecodeResponse(b []byte) (Response, error) {
	if len(b) < 13 {
		return Response{}, fmt.Errorf("admin: short response")
	}
	r := Response{Status: Status(b[0]), Size: binary.LittleEndian.Uint64(b[1:])}
	n := int(binary.LittleEndian.Uint32(b[9:]))
	if len(b) < 13+n {
		return Response{}, fmt.Errorf("admin: truncated response")
	}
	if n > 0 {
		r.Data = append([]byte(nil), b[13:13+n]...)
	}
	return r, nil
}

// Config parameterizes the console.
type Config struct {
	App msg.AppID
	// Token is the operator credential every command must carry.
	Token uint64
	// LogFile is the log to serve (on the smart SSD).
	LogFile string
	// LogToken authenticates the console's own open of the log file.
	LogToken uint64
	// Memctrl is the memory controller's address.
	Memctrl msg.DeviceID
	// Loader is the device whose loader service OpUpload targets.
	Loader msg.DeviceID
	// LoaderToken authenticates uploads at the device.
	LoaderToken uint64
}

// Console is the remote-maintenance application.
type Console struct {
	cfg   Config
	rt    *smartnic.Runtime
	log   smartnic.FileAPI
	ready bool

	// pendingUploads routes loader responses back to the operator
	// commands that initiated them, keyed by image name.
	pendingUploads map[string]func(*msg.LoadResp)

	// Served counts successfully executed commands.
	Served uint64
	// AuthFailures counts rejected commands.
	AuthFailures uint64
}

// New builds a console app; add it to a NIC with AddApp.
func New(cfg Config) *Console {
	return &Console{cfg: cfg, pendingUploads: make(map[string]func(*msg.LoadResp))}
}

// AppID implements smartnic.App.
func (c *Console) AppID() msg.AppID { return c.cfg.App }

// Ready reports whether the log connection is up.
func (c *Console) Ready() bool { return c.ready }

// Boot implements smartnic.App.
func (c *Console) Boot(rt *smartnic.Runtime) {
	c.rt = rt
	// One LoadResp handler for the console's lifetime; individual upload
	// commands register continuations by image name.
	rt.NIC().Device().Handle(msg.KindLoadResp, func(e msg.Envelope) {
		m := e.Msg.(*msg.LoadResp)
		if cb, ok := c.pendingUploads[m.Image]; ok {
			delete(c.pendingUploads, m.Image)
			cb(m)
		}
	})
	rt.OpenFile(c.cfg.Memctrl, c.cfg.LogFile, c.cfg.LogToken, 32, func(f *smartnic.FileClient, err error) {
		if err != nil {
			return // console stays unavailable; operator sees StatusUnavailable
		}
		c.log = f
		c.ready = true
	})
}

// PeerFailed implements smartnic.App.
func (c *Console) PeerFailed(dev msg.DeviceID) {
	if c.log != nil && c.log.Provider() == dev {
		c.ready = false
	}
}

// ServeNetwork implements smartnic.App: decode, authenticate, execute.
func (c *Console) ServeNetwork(payload []byte, reply func([]byte)) {
	req, err := DecodeRequest(payload)
	if err != nil {
		reply(EncodeResponse(Response{Status: StatusError}))
		return
	}
	// §4: authentication before anything else.
	if req.Token != c.cfg.Token {
		c.AuthFailures++
		reply(EncodeResponse(Response{Status: StatusAuthFailed}))
		return
	}
	switch req.Op {
	case OpPing:
		c.Served++
		reply(EncodeResponse(Response{Status: StatusOK}))
	case OpStatLog:
		if !c.ready {
			reply(EncodeResponse(Response{Status: StatusUnavailable}))
			return
		}
		c.log.Stat(func(size uint64, err error) {
			if err != nil {
				reply(EncodeResponse(Response{Status: StatusError}))
				return
			}
			c.Served++
			reply(EncodeResponse(Response{Status: StatusOK, Size: size}))
		})
	case OpTailLog:
		if !c.ready {
			reply(EncodeResponse(Response{Status: StatusUnavailable}))
			return
		}
		c.log.Stat(func(size uint64, err error) {
			if err != nil {
				reply(EncodeResponse(Response{Status: StatusError}))
				return
			}
			n := uint64(req.N)
			if max := uint64(c.log.MaxIO()); n > max {
				n = max
			}
			if n > size {
				n = size
			}
			if n == 0 {
				c.Served++
				reply(EncodeResponse(Response{Status: StatusOK, Size: size}))
				return
			}
			c.log.Read(size-n, int(n), func(b []byte, err error) {
				if err != nil {
					reply(EncodeResponse(Response{Status: StatusError}))
					return
				}
				c.Served++
				reply(EncodeResponse(Response{Status: StatusOK, Size: size, Data: b}))
			})
		})
	case OpUpload:
		if c.cfg.Loader == 0 {
			reply(EncodeResponse(Response{Status: StatusError}))
			return
		}
		// Forward to the device loader (§2.1) with the loader credential;
		// the operator's own credential was already checked.
		if _, busy := c.pendingUploads[req.Name]; busy {
			reply(EncodeResponse(Response{Status: StatusError, Data: []byte("upload in progress")}))
			return
		}
		c.pendingUploads[req.Name] = func(m *msg.LoadResp) {
			if m.OK {
				c.Served++
				reply(EncodeResponse(Response{Status: StatusOK}))
			} else {
				reply(EncodeResponse(Response{Status: StatusError, Data: []byte(m.Reason)}))
			}
		}
		c.rt.NIC().Device().Send(c.cfg.Loader, &msg.LoadReq{Image: req.Name, Token: c.cfg.LoaderToken, Data: req.Data})
	default:
		reply(EncodeResponse(Response{Status: StatusError}))
	}
}
