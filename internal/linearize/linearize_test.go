package linearize

import (
	"testing"

	"nocpu/internal/sim"
)

// t returns a sim.Time in microseconds, for compact histories.
func at(us int) sim.Time { return sim.Time(us) * sim.Time(sim.Microsecond) }

func mustOK(t *testing.T, h *History) {
	t.Helper()
	res := Check(h)
	if len(res.Aborted) != 0 {
		t.Fatalf("checker aborted on keys %v", res.Aborted)
	}
	if !res.OK {
		t.Fatalf("history judged non-linearizable at key %q, want linearizable", res.BadKey)
	}
}

func mustViolate(t *testing.T, h *History, key string) {
	t.Helper()
	res := Check(h)
	if len(res.Aborted) != 0 {
		t.Fatalf("checker aborted on keys %v", res.Aborted)
	}
	if res.OK {
		t.Fatal("history judged linearizable, want violation")
	}
	if res.BadKey != key {
		t.Fatalf("violation pinned to key %q, want %q", res.BadKey, key)
	}
}

// Sequential put/get/delete against one key: trivially linearizable.
func TestSequentialHistoryLinearizes(t *testing.T) {
	h := NewHistory()
	id := h.Invoke(Put, "k", 1, at(0))
	h.Return(id, OK, 0, at(10))
	id = h.Invoke(Get, "k", 0, at(20))
	h.Return(id, OK, 1, at(30))
	id = h.Invoke(Delete, "k", 0, at(40))
	h.Return(id, OK, 0, at(50))
	id = h.Invoke(Get, "k", 0, at(60))
	h.Return(id, NotFound, 0, at(70))
	mustOK(t, h)
}

// A read that returns the OLD value after a newer write fully
// completed has no sequential explanation: the stale read is exactly
// what a split-brain primary serves.
func TestStaleReadViolates(t *testing.T) {
	h := NewHistory()
	id := h.Invoke(Put, "k", 1, at(0))
	h.Return(id, OK, 0, at(10))
	id = h.Invoke(Put, "k", 2, at(20))
	h.Return(id, OK, 0, at(30))
	id = h.Invoke(Get, "k", 0, at(40))
	h.Return(id, OK, 1, at(50)) // stale: 2 was acked before this began
	mustViolate(t, h, "k")
}

// A read CONCURRENT with a write may observe either side of it — both
// responses are linearizable, because the write's point can land
// before or after the read's.
func TestConcurrentReadSeesEitherValue(t *testing.T) {
	for _, ret := range []uint64{1, 2} {
		h := NewHistory()
		id := h.Invoke(Put, "k", 1, at(0))
		h.Return(id, OK, 0, at(10))
		put := h.Invoke(Put, "k", 2, at(20)) // overlaps the get
		id = h.Invoke(Get, "k", 0, at(25))
		h.Return(id, OK, ret, at(35))
		h.Return(put, OK, 0, at(40))
		mustOK(t, h)
	}
}

// NotFound after an acked put (and no delete anywhere) means the write
// was lost — the R1 ledger's durability claim, judged from outside.
func TestNotFoundAfterAckedPutViolates(t *testing.T) {
	h := NewHistory()
	id := h.Invoke(Put, "k", 7, at(0))
	h.Return(id, OK, 0, at(10))
	id = h.Invoke(Get, "k", 0, at(20))
	h.Return(id, NotFound, 0, at(30))
	mustViolate(t, h, "k")
}

// An ambiguous write (timeout, StatusError) may have executed or not:
// a later read is allowed to see it, to miss it — and once some read
// HAS seen it, earlier state may not reappear.
func TestMaybeWriteIsOptional(t *testing.T) {
	// Branch 1: the maybe-write never took effect.
	h := NewHistory()
	id := h.Invoke(Put, "k", 1, at(0))
	h.Return(id, OK, 0, at(10))
	id = h.Invoke(Put, "k", 2, at(20))
	h.Return(id, Maybe, 0, at(30))
	id = h.Invoke(Get, "k", 0, at(40))
	h.Return(id, OK, 1, at(50))
	mustOK(t, h)

	// Branch 2: it did take effect.
	h = NewHistory()
	id = h.Invoke(Put, "k", 1, at(0))
	h.Return(id, OK, 0, at(10))
	id = h.Invoke(Put, "k", 2, at(20))
	h.Return(id, Maybe, 0, at(30))
	id = h.Invoke(Get, "k", 0, at(40))
	h.Return(id, OK, 2, at(50))
	mustOK(t, h)

	// But not both: after a read observed the maybe-write, the register
	// cannot revert to the old value.
	h = NewHistory()
	id = h.Invoke(Put, "k", 1, at(0))
	h.Return(id, OK, 0, at(10))
	id = h.Invoke(Put, "k", 2, at(20))
	h.Return(id, Maybe, 0, at(30))
	id = h.Invoke(Get, "k", 0, at(40))
	h.Return(id, OK, 2, at(50))
	id = h.Invoke(Get, "k", 0, at(60))
	h.Return(id, OK, 1, at(70))
	mustViolate(t, h, "k")
}

// An ambiguous write may take effect AFTER its failure response came
// back (it was in a retry queue, a delayed frame): a much later read
// observing it is still linearizable.
func TestMaybeWriteMayLandLate(t *testing.T) {
	h := NewHistory()
	id := h.Invoke(Put, "k", 1, at(0))
	h.Return(id, OK, 0, at(10))
	id = h.Invoke(Put, "k", 2, at(20))
	h.Return(id, Maybe, 0, at(30))
	id = h.Invoke(Get, "k", 0, at(40))
	h.Return(id, OK, 1, at(50)) // not yet landed
	id = h.Invoke(Get, "k", 0, at(60))
	h.Return(id, OK, 2, at(70)) // landed now — fine
	mustOK(t, h)
}

// A typed refusal (fenced, shed, denied) contractually did NOT
// execute: a later read must NOT be required to see it, and seeing it
// would itself be a violation — the fencing contract, judged from the
// client side.
func TestTypedRefusalIsExcluded(t *testing.T) {
	h := NewHistory()
	id := h.Invoke(Put, "k", 1, at(0))
	h.Return(id, OK, 0, at(10))
	id = h.Invoke(Put, "k", 2, at(20))
	h.Return(id, Fail, 0, at(30)) // fenced primary refused it
	id = h.Invoke(Get, "k", 0, at(40))
	h.Return(id, OK, 1, at(50))
	mustOK(t, h)

	// The refused write leaking into the register IS a violation: a
	// "fenced" primary that applied the write anyway.
	h = NewHistory()
	id = h.Invoke(Put, "k", 1, at(0))
	h.Return(id, OK, 0, at(10))
	id = h.Invoke(Put, "k", 2, at(20))
	h.Return(id, Fail, 0, at(30))
	id = h.Invoke(Get, "k", 0, at(40))
	h.Return(id, OK, 2, at(50))
	mustViolate(t, h, "k")
}

// An operation still Pending when the run ends is carried like an
// ambiguous write; a pending READ constrains nothing and is excluded.
func TestPendingTailIsAmbiguous(t *testing.T) {
	h := NewHistory()
	id := h.Invoke(Put, "k", 1, at(0))
	h.Return(id, OK, 0, at(10))
	h.Invoke(Put, "k", 2, at(20)) // no response before end of run
	h.Invoke(Get, "k", 0, at(25)) // ditto — excluded
	id = h.Invoke(Get, "k", 0, at(40))
	h.Return(id, OK, 2, at(50)) // pending write took effect: fine
	mustOK(t, h)

	res := Check(h)
	if res.Excluded != 1 || res.Optional != 1 {
		t.Fatalf("classification: excluded=%d optional=%d, want 1 and 1", res.Excluded, res.Optional)
	}
}

// Keys are independent objects: a violation on one key is pinned to
// that key and does not implicate the others.
func TestPerKeyComposition(t *testing.T) {
	h := NewHistory()
	id := h.Invoke(Put, "good", 1, at(0))
	h.Return(id, OK, 0, at(10))
	id = h.Invoke(Put, "bad", 1, at(0))
	h.Return(id, OK, 0, at(10))
	id = h.Invoke(Get, "bad", 0, at(20))
	h.Return(id, NotFound, 0, at(30)) // lost write on "bad" only
	id = h.Invoke(Get, "good", 0, at(20))
	h.Return(id, OK, 1, at(30))
	mustViolate(t, h, "bad")
}

// The real split-brain shape E21 hunts: clients on both sides of a
// partition each get OK for DIFFERENT writes to the same key, then a
// post-heal read can only explain one of them. Two acked diverging
// writes with a read pinning each — no sequential order exists.
func TestSplitBrainShapeViolates(t *testing.T) {
	h := NewHistory()
	// Side A: put 1, read back 1.
	a := h.Invoke(Put, "k", 1, at(0))
	h.Return(a, OK, 0, at(10))
	// Side B, concurrently: put 2, read back 2.
	b := h.Invoke(Put, "k", 2, at(0))
	h.Return(b, OK, 0, at(10))
	ra := h.Invoke(Get, "k", 0, at(20))
	h.Return(ra, OK, 1, at(30))
	rb := h.Invoke(Get, "k", 0, at(40)) // after the 1-read completed
	h.Return(rb, OK, 2, at(50))
	ra2 := h.Invoke(Get, "k", 0, at(60)) // and back to 1: impossible
	h.Return(ra2, OK, 1, at(70))
	mustViolate(t, h, "k")
}

// Determinism: the same history checks to the same verdict and the
// same counters every time (the checker feeds golden tables).
func TestCheckerIsDeterministic(t *testing.T) {
	build := func() *History {
		h := NewHistory()
		for i := 0; i < 6; i++ {
			id := h.Invoke(Put, "a", uint64(i), at(i*10))
			h.Return(id, OK, 0, at(i*10+15)) // overlapping puts
			id = h.Invoke(Get, "b", 0, at(i*10+2))
			h.Return(id, NotFound, 0, at(i*10+6))
		}
		return h
	}
	first := Check(build())
	for i := 0; i < 5; i++ {
		got := Check(build())
		if got.OK != first.OK || got.BadKey != first.BadKey || got.Keys != first.Keys ||
			got.Required != first.Required || got.Optional != first.Optional ||
			got.Excluded != first.Excluded || len(got.Aborted) != len(first.Aborted) {
			t.Fatalf("run %d: %+v != %+v", i, got, first)
		}
	}
}
