// Package linearize records client-observed KVS histories and checks
// them for linearizability. It is the harness's L1 audit: after a
// fault-schedule run, every completed operation must be explainable by
// ONE sequential execution that respects real time — if no such order
// exists, two sides of a partition each executed writes the other
// never saw, i.e. split-brain, and no amount of per-machine assertion
// can prove its absence the way the client history can.
//
// The checker is the Wing–Gong construction [Wing & Gong, JPDC '93]
// specialized to a register per key: linearizability is compositional
// over independent objects, so each key's sub-history is searched
// separately (small DFS instances instead of one exponential one).
// Ambiguous operations — a timeout, a StatusError, an unavailable
// shard — may or may not have taken effect; the checker carries their
// writes as OPTIONAL events that the search may place at any point
// after invocation or drop entirely. Typed refusals (shed, fenced,
// denied) are the opposite: the contract says the operation did NOT
// execute, so they are excluded outright — which is precisely why
// fencing must be typed and never silent.
package linearize

import (
	"math"
	"sort"

	"nocpu/internal/sim"
)

// OpKind is the register operation vocabulary (mirrors kvs ops).
type OpKind uint8

const (
	Get OpKind = iota
	Put
	Delete
)

// Outcome is the client-observed result of one operation.
type Outcome uint8

const (
	// Pending: invoked, no response by end of run. The operation may or
	// may not have taken effect (a write in flight when the run ended).
	Pending Outcome = iota
	// OK / NotFound: definitive responses; the operation executed.
	OK
	NotFound
	// Fail: a typed refusal (shed, fenced, denied). The contract is
	// that the operation did NOT execute; it is excluded from the
	// linearization search entirely.
	Fail
	// Maybe: an ambiguous failure (StatusError, unavailable, transport
	// loss). The operation may have executed before the failure.
	Maybe
)

// Op is one invocation/response pair in a history.
type Op struct {
	ID      int
	Kind    OpKind
	Key     string
	Arg     uint64 // value written (Put); unused otherwise
	Ret     uint64 // value read (Get that returned OK)
	Start   sim.Time
	End     sim.Time // response time; meaningless while Pending
	Outcome Outcome
}

// History is an append-only record of client-side operations. One
// recorder per harness run; concurrency in the model comes from
// overlapping [Start, End] windows, so a single recorder serves any
// number of simulated clients.
type History struct {
	ops []Op
}

// NewHistory returns an empty recorder.
func NewHistory() *History { return &History{} }

// Invoke records the start of an operation and returns its ID for the
// matching Return call. Operations left without a Return stay Pending.
func (h *History) Invoke(kind OpKind, key string, arg uint64, now sim.Time) int {
	id := len(h.ops)
	h.ops = append(h.ops, Op{ID: id, Kind: kind, Key: key, Arg: arg, Start: now, Outcome: Pending})
	return id
}

// Return records the response for the operation Invoke returned id for.
func (h *History) Return(id int, outcome Outcome, ret uint64, now sim.Time) {
	op := &h.ops[id]
	op.Outcome = outcome
	op.Ret = ret
	op.End = now
}

// Len returns the number of recorded operations.
func (h *History) Len() int { return len(h.ops) }

// Ops returns a copy of the recorded operations, in invocation order.
func (h *History) Ops() []Op { return append([]Op(nil), h.ops...) }

// Result is the checker's verdict over one history.
type Result struct {
	OK     bool
	BadKey string // first (lexicographically) key with no linearization

	Keys     int // distinct keys checked
	Required int // definitive ops the search had to place
	Optional int // ambiguous writes carried as optional events
	Excluded int // typed refusals and unresolved reads, dropped

	// Aborted lists keys whose search exhausted the state budget
	// (verdict unknown there). Empty on any realistic history; non-nil
	// means the run must be treated as unverified, not as passing.
	Aborted []string
}

// maxStates bounds the total DFS states explored across all keys, so a
// pathological history degrades to an explicit "unknown" instead of
// hanging the harness.
const maxStates = 1 << 21

// timeInf orders optional events: an ambiguous write has no response
// constraint, so its effective end is the end of time.
const timeInf = sim.Time(math.MaxInt64)

// Check searches for a linearization of the history, key by key.
func Check(h *History) Result {
	perKey := make(map[string][]Op)
	var keys []string
	res := Result{OK: true}
	for _, op := range h.ops {
		switch {
		case op.Outcome == Fail:
			res.Excluded++ // typed refusal: contractually never executed
			continue
		case op.Kind == Get && (op.Outcome == Pending || op.Outcome == Maybe):
			res.Excluded++ // a read nobody saw the result of constrains nothing
			continue
		case op.Outcome == Pending || op.Outcome == Maybe:
			res.Optional++
		default:
			res.Required++
		}
		if _, ok := perKey[op.Key]; !ok {
			keys = append(keys, op.Key)
		}
		perKey[op.Key] = append(perKey[op.Key], op)
	}
	sort.Strings(keys)
	res.Keys = len(keys)

	budget := maxStates
	for _, k := range keys {
		switch checkKey(perKey[k], &budget) {
		case verdictFail:
			if res.OK {
				res.OK = false
				res.BadKey = k
			}
		case verdictAbort:
			res.Aborted = append(res.Aborted, k)
		}
	}
	return res
}

type verdict uint8

const (
	verdictOK verdict = iota
	verdictFail
	verdictAbort
)

// reg is the sequential specification: a single register per key.
type reg struct {
	present bool
	val     uint64
}

// apply runs one operation against the register, reporting whether the
// observed response is consistent with that state.
func apply(op Op, r reg) (reg, bool) {
	switch op.Kind {
	case Get:
		if op.Outcome == NotFound {
			return r, !r.present
		}
		return r, r.present && r.val == op.Ret
	case Put:
		return reg{present: true, val: op.Arg}, true
	default: // Delete
		if op.Outcome == OK {
			return reg{}, r.present
		}
		if op.Outcome == NotFound {
			return r, !r.present
		}
		// Optional delete: applying it to an absent register is a no-op
		// either way, so the effect is simply "absent".
		return reg{}, true
	}
}

// effEnd is the response-time bound the Wing–Gong minimality rule
// uses. Definitive ops end when their response arrived; ambiguous ones
// never constrain the order of others.
func effEnd(op Op) sim.Time {
	if op.Outcome == Pending || op.Outcome == Maybe {
		return timeInf
	}
	return op.End
}

// checkKey runs the Wing–Gong DFS over one key's sub-history. At each
// step, any not-yet-linearized operation whose invocation precedes the
// earliest outstanding response may be linearized next (the minimality
// rule: real-time order is preserved exactly for non-overlapping
// operations). Required ops must all be placed consistently; optional
// (ambiguous) writes are placed only when doing so helps — a path that
// never picks one IS the "it never took effect" branch, and the
// termination condition ignores them.
func checkKey(ops []Op, budget *int) verdict {
	n := len(ops)
	required := 0
	for _, op := range ops {
		if op.Outcome != Pending && op.Outcome != Maybe {
			required++
		}
	}
	if required == 0 {
		return verdictOK
	}

	words := (n + 63) / 64
	memo := make(map[string]bool)
	// memoKey folds the linearized-set bitmap and register state: two
	// search paths reaching the same pair explore identical futures.
	memoKey := func(mask []uint64, r reg) string {
		b := make([]byte, 0, words*8+9)
		for _, w := range mask {
			for s := 0; s < 64; s += 8 {
				b = append(b, byte(w>>s))
			}
		}
		if r.present {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(r.val>>s))
		}
		return string(b)
	}

	var dfs func(mask []uint64, r reg, left int) verdict
	dfs = func(mask []uint64, r reg, left int) verdict {
		if left == 0 {
			return verdictOK
		}
		if *budget <= 0 {
			return verdictAbort
		}
		*budget--
		key := memoKey(mask, r)
		if memo[key] {
			return verdictFail
		}
		minEnd := timeInf
		for i := 0; i < n; i++ {
			if mask[i/64]&(1<<(i%64)) == 0 {
				if e := effEnd(ops[i]); e < minEnd {
					minEnd = e
				}
			}
		}
		for i := 0; i < n; i++ {
			if mask[i/64]&(1<<(i%64)) != 0 || ops[i].Start > minEnd {
				continue
			}
			next, consistent := apply(ops[i], r)
			if !consistent {
				continue
			}
			mask[i/64] |= 1 << (i % 64)
			nl := left
			if ops[i].Outcome != Pending && ops[i].Outcome != Maybe {
				nl--
			}
			v := dfs(mask, next, nl)
			mask[i/64] &^= 1 << (i % 64)
			if v != verdictFail {
				return v
			}
		}
		memo[key] = true
		return verdictFail
	}

	return dfs(make([]uint64, words), reg{}, required)
}
