// Package nocpu is an emulated CPU-less machine: a Go reproduction of
// "The Last CPU" (Joel Nider and Sasha Fedorova, HotOS 2021).
//
// The paper argues that once applications are offloaded to programmable
// devices, the CPU's remaining duties — initialization, coordination,
// error handling — can move into a privileged system-management bus plus
// self-managing devices, and the CPU can be removed entirely. This module
// builds that machine in software (the emulator §2.4 of the paper calls
// for), alongside a centralized-CPU baseline, and quantifies the paper's
// claims.
//
// Entry points:
//
//   - internal/core: assemble and boot machines (see examples/).
//   - internal/exp: the experiment harness (cmd/nocpu-bench).
//   - cmd/nocpu-sim: run the paper's §3 KVS scenario with a full trace.
//
// The benchmarks in bench_test.go exercise one scenario per experiment
// table; EXPERIMENTS.md records full results. All timing is virtual
// (discrete-event simulation) and deterministic.
package nocpu
