module nocpu

go 1.22
