// pipeline runs one application distributed across three devices — the
// §2.2 point that "an application can be distributed across many
// devices, but what uniquely identifies it is its virtual address space".
//
// The app lives on the smart NIC; its data file lives on the smart SSD;
// checksums and compression run on the compute accelerator. One PASID
// (the app id) identifies it in all three devices' IOMMUs, every mapping
// installed by the system bus under memory-controller authorization. No
// CPU exists in the machine.
package main

import (
	"fmt"
	"log"

	"nocpu/internal/accel"
	"nocpu/internal/core"
	"nocpu/internal/msg"
	"nocpu/internal/sim"
	"nocpu/internal/smartnic"
)

// pipelineApp reads its file from the SSD, checksums and compresses each
// chunk on the accelerator, and reports totals.
type pipelineApp struct {
	file    string
	fileCli *smartnic.FileClient
	crcCli  *accel.Client
	rleCli  *accel.Client
	ready   int
	Err     error

	Chunks   int
	InBytes  int
	OutBytes int
	CRCs     []uint32
	Done     bool
}

func (a *pipelineApp) AppID() msg.AppID { return 1 }
func (a *pipelineApp) Boot(rt *smartnic.Runtime) {
	// Three Figure-2 sequences, one per service, all in PASID 1.
	rt.OpenFile(core.ControlID, a.file, 0, 64, func(fc *smartnic.FileClient, err error) {
		a.collect(err, func() { a.fileCli = fc }, rt)
	})
	rt.OpenService(core.ControlID, "xform:crc32", 0, 32, func(c *smartnic.Connection, err error) {
		a.collect(err, func() { a.crcCli = &accel.Client{Conn: c.Queue} }, rt)
	})
	rt.OpenService(core.ControlID, "xform:rle", 0, 32, func(c *smartnic.Connection, err error) {
		a.collect(err, func() { a.rleCli = &accel.Client{Conn: c.Queue} }, rt)
	})
}
func (a *pipelineApp) collect(err error, ok func(), rt *smartnic.Runtime) {
	if err != nil {
		a.Err = err
		a.Done = true
		return
	}
	ok()
	a.ready++
	if a.ready == 3 {
		a.run()
	}
}
func (a *pipelineApp) ServeNetwork(p []byte, reply func([]byte)) { reply(p) }
func (a *pipelineApp) PeerFailed(msg.DeviceID)                   {}

// run streams the file through the accelerator chunk by chunk.
func (a *pipelineApp) run() {
	a.fileCli.Stat(func(size uint64, err error) {
		if err != nil {
			a.Err, a.Done = err, true
			return
		}
		a.step(0, size)
	})
}

func (a *pipelineApp) step(off, size uint64) {
	if off >= size {
		a.Done = true
		return
	}
	n := a.fileCli.MaxIO()
	if n > 3000 {
		n = 3000 // keep transform requests within the accel cell
	}
	if rem := size - off; uint64(n) > rem {
		n = int(rem)
	}
	a.fileCli.Read(off, n, func(chunk []byte, err error) {
		if err != nil {
			a.Err, a.Done = err, true
			return
		}
		a.crcCli.Do(chunk, func(crc []byte, err error) {
			if err != nil {
				a.Err, a.Done = err, true
				return
			}
			a.CRCs = append(a.CRCs, uint32(crc[0])|uint32(crc[1])<<8|uint32(crc[2])<<16|uint32(crc[3])<<24)
			a.rleCli.Do(chunk, func(compressed []byte, err error) {
				if err != nil {
					a.Err, a.Done = err, true
					return
				}
				a.Chunks++
				a.InBytes += len(chunk)
				a.OutBytes += len(compressed)
				a.step(off+uint64(len(chunk)), size)
			})
		})
	})
}

func main() {
	sys := core.MustNew(core.Options{Flavor: core.Decentralized, Seed: 13, WithAccel: true})
	if err := sys.Boot(); err != nil {
		log.Fatal(err)
	}
	// A compressible data file: text-ish runs.
	data := make([]byte, 40000)
	for i := range data {
		data[i] = byte('a' + (i/100)%4)
	}
	if err := sys.CreateFile("corpus.dat", data); err != nil {
		log.Fatal(err)
	}

	app := &pipelineApp{file: "corpus.dat"}
	sys.NIC().AddApp(app)
	for !app.Done {
		sys.Eng.RunFor(sim.Millisecond)
	}
	if app.Err != nil {
		log.Fatal(app.Err)
	}

	fmt.Printf("pipeline processed %d chunks, %d -> %d bytes (%.1fx compression)\n",
		app.Chunks, app.InBytes, app.OutBytes, float64(app.InBytes)/float64(app.OutBytes))
	fmt.Printf("first/last chunk CRC32: %08x / %08x\n", app.CRCs[0], app.CRCs[len(app.CRCs)-1])
	fmt.Printf("virtual time: %v\n", sys.Eng.Now())

	fmt.Println("\none application, one address space, three devices:")
	fmt.Printf("  nic IOMMU contexts:   %d (PASID 1)\n", sys.NIC().Device().IOMMU().Contexts())
	fmt.Printf("  ssd IOMMU contexts:   %d (PASID 1, granted by bus)\n", sys.SSD().Device().IOMMU().Contexts())
	fmt.Printf("  accel IOMMU contexts: %d (PASID 1, granted by bus)\n", sys.Accel.Device().IOMMU().Contexts())
	fmt.Printf("  accel ops served:     %d (%d bytes)\n", sys.Accel.Stats().Ops, sys.Accel.Stats().BytesProcessed)
	fmt.Printf("  bus grants authorized: %d\n", sys.Bus.Stats().GrantsOK)
}
