// kvstore runs the paper's motivating workload at scale on both machine
// flavors: a KVS offloaded to the smart NIC, values on the smart SSD,
// driven by simulated network clients with Zipf-distributed keys — then
// prints throughput and latency for the decentralized machine, the
// centralized-control baseline, and the fully kernel-mediated stack.
package main

import (
	"fmt"
	"log"

	"nocpu/internal/core"
	"nocpu/internal/kvs"
	"nocpu/internal/netsim"
	"nocpu/internal/sim"
)

const (
	numKeys   = 512
	valueSize = 512
	getRatio  = 0.9
)

func runFlavor(flavor core.Flavor, mediated bool) netsim.Stats {
	sys := core.MustNew(core.Options{Flavor: flavor, Seed: 7, NoTrace: true})
	if err := sys.Boot(); err != nil {
		log.Fatal(err)
	}
	if err := sys.CreateFile("kv.dat", nil); err != nil {
		log.Fatal(err)
	}
	if sys.CPU != nil {
		sys.CPU.RegisterFile("kv.dat", core.FirstSSD)
	}
	store := sys.NewKVS(core.KVSOptions{App: 1, File: "kv.dat", Mediated: mediated, QueueEntries: 128})
	if err := sys.WaitReady(store); err != nil {
		log.Fatal(err)
	}

	// Preload keys with a closed loop.
	preload := &netsim.ClosedLoop{
		Eng: sys.Eng, Rand: sys.Rand.Fork(), Workers: 8, PerWorker: numKeys / 8,
		Gen: func(r *sim.Rand, seq uint64) []byte {
			return kvs.EncodeRequest(kvs.Request{
				Op: kvs.OpPut, Key: fmt.Sprintf("key-%04d", seq), Value: make([]byte, valueSize),
			})
		},
		Target: func(p []byte, reply func([]byte)) { sys.NIC().Deliver(1, p, reply) },
	}
	loaded := false
	preload.Run(func() { loaded = true })
	for !loaded {
		sys.Eng.RunFor(sim.Millisecond)
	}

	// Measured phase: 90% gets / 10% puts, Zipf keys.
	zipf := sim.NewZipf(sys.Rand.Fork(), numKeys, 0.99)
	wl := &netsim.ClosedLoop{
		Eng: sys.Eng, Rand: sys.Rand.Fork(), Workers: 16, PerWorker: 500,
		Gen: func(r *sim.Rand, seq uint64) []byte {
			key := fmt.Sprintf("key-%04d", zipf.Next())
			if r.Float64() < getRatio {
				return kvs.EncodeRequest(kvs.Request{Op: kvs.OpGet, Key: key})
			}
			return kvs.EncodeRequest(kvs.Request{Op: kvs.OpPut, Key: key, Value: make([]byte, valueSize)})
		},
		IsError: func(b []byte) bool {
			r, err := kvs.DecodeResponse(b)
			return err != nil || r.Status != kvs.StatusOK
		},
		Target: func(p []byte, reply func([]byte)) { sys.NIC().Deliver(1, p, reply) },
	}
	finished := false
	wl.Run(func() { finished = true })
	for !finished {
		sys.Eng.RunFor(sim.Millisecond)
	}
	return wl.Stats()
}

func main() {
	type row struct {
		name     string
		flavor   core.Flavor
		mediated bool
	}
	rows := []row{
		{"decentralized (paper)", core.Decentralized, false},
		{"centralized control, P2P data", core.Centralized, false},
		{"kernel-mediated data path", core.Centralized, true},
	}
	fmt.Printf("%-32s %12s %10s %10s %10s\n", "machine", "ops/s", "p50", "p99", "errors")
	for _, r := range rows {
		st := runFlavor(r.flavor, r.mediated)
		fmt.Printf("%-32s %12.0f %10v %10v %10d\n",
			r.name, st.Throughput(), st.Latency.P50(), st.Latency.P99(), st.Errors)
	}
}
