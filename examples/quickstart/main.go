// Quickstart: boot the CPU-less machine, run the paper's §3 scenario
// once (a KVS on the smart NIC backed by a file on the smart SSD), and
// print the Figure-2 initialization message sequence observed on the
// system-management bus.
package main

import (
	"fmt"
	"log"

	"nocpu/internal/core"
	"nocpu/internal/kvs"
	"nocpu/internal/sim"
)

func main() {
	sys := core.MustNew(core.Options{Flavor: core.Decentralized, Seed: 1})
	if err := sys.Boot(); err != nil {
		log.Fatal(err)
	}
	if err := sys.CreateFile("kv.dat", nil); err != nil {
		log.Fatal(err)
	}

	store := sys.NewKVS(core.KVSOptions{App: 1, File: "kv.dat"})
	if err := sys.WaitReady(store); err != nil {
		log.Fatal(err)
	}

	// One put and one get through the NIC's network edge.
	do := func(req kvs.Request) kvs.Response {
		var resp kvs.Response
		done := false
		sys.NIC().Deliver(store.AppID(), kvs.EncodeRequest(req), func(b []byte) {
			resp, _ = kvs.DecodeResponse(b)
			done = true
		})
		for !done {
			sys.Eng.RunFor(10 * sim.Microsecond)
		}
		return resp
	}

	put := do(kvs.Request{Op: kvs.OpPut, Key: "hello", Value: []byte("world, without a CPU")})
	fmt.Printf("put status: %d\n", put.Status)
	get := do(kvs.Request{Op: kvs.OpGet, Key: "hello"})
	fmt.Printf("get -> %q\n", get.Value)

	fmt.Println("\n-- Figure 2: initialization sequence on the system bus --")
	for _, e := range sys.Tracer.Events() {
		switch e.Kind {
		case "discover.req", "discover.resp", "open.req", "open.resp",
			"alloc.req", "alloc.resp", "grant.req", "auth.req", "auth.resp",
			"grant.resp", "connect.req", "connect.resp":
			fmt.Println(e)
		}
	}
	fmt.Printf("\nvirtual time elapsed: %v\n", sys.Eng.Now())
}
