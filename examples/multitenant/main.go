// multitenant runs several independent applications on the same CPU-less
// machine: three KVS tenants on one smart NIC, each with its own data
// file on the shared smart SSD, each in its own virtual address space
// (PASID). It demonstrates §2.1's isolation requirements: per-instance
// service contexts on the SSD, per-app IOMMU address spaces, and the
// fact that one tenant cannot see another's data.
package main

import (
	"fmt"
	"log"

	"nocpu/internal/core"
	"nocpu/internal/kvs"
	"nocpu/internal/msg"
	"nocpu/internal/sim"
)

func main() {
	sys := core.MustNew(core.Options{Flavor: core.Decentralized, Seed: 9})
	if err := sys.Boot(); err != nil {
		log.Fatal(err)
	}

	const tenants = 3
	stores := make([]*kvs.Store, tenants)
	for i := 0; i < tenants; i++ {
		file := fmt.Sprintf("tenant%d.dat", i)
		if err := sys.CreateFile(file, nil); err != nil {
			log.Fatal(err)
		}
		stores[i] = sys.NewKVS(core.KVSOptions{App: msg.AppID(i + 1), File: file})
	}
	for i, st := range stores {
		if err := sys.WaitReady(st); err != nil {
			log.Fatalf("tenant %d: %v", i, err)
		}
	}

	do := func(app msg.AppID, req kvs.Request) kvs.Response {
		var resp kvs.Response
		done := false
		sys.NIC().Deliver(app, kvs.EncodeRequest(req), func(b []byte) {
			resp, _ = kvs.DecodeResponse(b)
			done = true
		})
		for !done {
			sys.Eng.RunFor(20 * sim.Microsecond)
		}
		return resp
	}

	// Each tenant writes under the same key name — separate namespaces.
	for i := range stores {
		do(msg.AppID(i+1), kvs.Request{Op: kvs.OpPut, Key: "shared-name",
			Value: []byte(fmt.Sprintf("tenant-%d-secret", i))})
	}
	for i := range stores {
		r := do(msg.AppID(i+1), kvs.Request{Op: kvs.OpGet, Key: "shared-name"})
		fmt.Printf("tenant %d reads %q\n", i, r.Value)
	}

	// Isolation evidence: each app is a distinct PASID context on the
	// NIC's IOMMU, and the SSD holds one service connection per tenant.
	fmt.Printf("\nNIC IOMMU address spaces: %d (one per tenant)\n", sys.NIC().Device().IOMMU().Contexts())
	nicStats := sys.NIC().Device().IOMMU().Stats()
	fmt.Printf("NIC translations: %d (TLB hit rate %.1f%%)\n", nicStats.Translations,
		100*float64(nicStats.TLBHits)/float64(nicStats.TLBHits+nicStats.TLBMisses))
	fmt.Printf("bus pages mapped: %d, grants authorized: %d\n",
		sys.Bus.Stats().PagesMapped, sys.Bus.Stats().GrantsOK)
}
