// faulttolerance demonstrates §4's error-handling story: the smart SSD
// dies mid-workload; the bus watchdog detects it, broadcasts
// DeviceFailed, resets the device; the SSD remounts its volume from
// flash; and the KVS on the NIC reconnects and rebuilds its index by
// scanning the data file. No CPU is involved at any point.
package main

import (
	"fmt"
	"log"

	"nocpu/internal/core"
	"nocpu/internal/kvs"
	"nocpu/internal/sim"
)

func main() {
	sys := core.MustNew(core.Options{
		Flavor:   core.Decentralized,
		Seed:     3,
		Watchdog: 500 * sim.Microsecond,
	})
	if err := sys.Boot(); err != nil {
		log.Fatal(err)
	}
	if err := sys.CreateFile("kv.dat", nil); err != nil {
		log.Fatal(err)
	}
	store := sys.NewKVS(core.KVSOptions{App: 1, File: "kv.dat"})
	if err := sys.WaitReady(store); err != nil {
		log.Fatal(err)
	}

	do := func(req kvs.Request) kvs.Response {
		var resp kvs.Response
		done := false
		sys.NIC().Deliver(1, kvs.EncodeRequest(req), func(b []byte) {
			resp, _ = kvs.DecodeResponse(b)
			done = true
		})
		deadline := sys.Eng.Now().Add(100 * sim.Millisecond)
		for !done && sys.Eng.Now() < deadline {
			sys.Eng.RunFor(20 * sim.Microsecond)
		}
		return resp
	}

	for i := 0; i < 20; i++ {
		do(kvs.Request{Op: kvs.OpPut, Key: fmt.Sprintf("k%02d", i), Value: []byte(fmt.Sprintf("value-%d", i))})
	}
	fmt.Printf("[%v] loaded 20 keys, store ready=%v\n", sys.Eng.Now(), store.Ready())

	killedAt := sys.Eng.Now()
	sys.SSD().Kill()
	fmt.Printf("[%v] SSD killed\n", killedAt)

	// Watch the recovery unfold.
	for !store.Ready() || !sys.SSD().Ready() {
		sys.Eng.RunFor(100 * sim.Microsecond)
		if sys.Eng.Now().Sub(killedAt) > 100*sim.Millisecond {
			log.Fatal("recovery did not complete")
		}
	}
	fmt.Printf("[%v] recovered: SSD remounted, KVS index rebuilt (%d records scanned)\n",
		sys.Eng.Now(), store.Stats().RecoveredRecords)
	fmt.Printf("    time to full recovery: %v\n", sys.Eng.Now().Sub(killedAt))

	r := do(kvs.Request{Op: kvs.OpGet, Key: "k07"})
	fmt.Printf("    get k07 after recovery -> %q (status %d)\n", r.Value, r.Status)

	fmt.Println("\n-- failure-handling events on the bus --")
	for _, e := range sys.Tracer.Events() {
		switch e.Kind {
		case "killed", "device.failed", "reset", "resetting", "reset.done", "fs-ready":
			fmt.Println(e)
		}
	}
}
