# Build/verification entry points. `make check` is the full gate used
# before merging: vet, the nocpu-lint analyzer suite, build, race-enabled
# tests, a short fuzz run of the wire-format decoder, the E15 chaos tier
# (seeded crash schedules under race), the E16 overload tier (seeded
# open-loop load ramps under race), the E17 fabric tier (rack-scale
# determinism, ring properties and machine-kill chaos under race),
# the E19 reconcile tier (self-healing fleet campaigns: membership
# repair, rolling upgrades and same-frame double failures under race),
# the E20 tenancy tier (seeded adversary attack matrix and the
# tenant-ledger S1/S2/S3 audits under race), and the E21 partition tier
# (asymmetric partitions, gray failures, epoch-lease fencing and the
# client-history linearizability audit under race).

GO ?= go

.PHONY: build test vet lint allows race fuzz chaos overload fabric reconcile tenancy partition benchguard check bench tables

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Custom determinism/decentralization/wire-compat analyzers
# (internal/lint), run via the go vet -vettool protocol. See
# internal/lint/lint.go for the rules and the //lint:allow escape
# hatch. After an intentional append-only wire change, regenerate the
# schema baseline with NOCPU_REGEN_WIRELOCK=1 make lint and commit
# internal/msg/wire.lock.
lint:
	$(GO) build -o bin/nocpu-lint ./cmd/nocpu-lint
	$(GO) vet -vettool=bin/nocpu-lint ./...

# Inventory of every //lint:allow suppression in the tree (file:line,
# rule, mandatory reason) — the whole exception surface in one listing.
allows:
	$(GO) build -o bin/nocpu-lint ./cmd/nocpu-lint
	./bin/nocpu-lint -allows .

race:
	$(GO) test -race ./...

# Fuzz the bus wire-format decoder for 10s (regression corpus under
# internal/msg/testdata/fuzz is always replayed by plain `go test`).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzDecode -fuzztime=10s ./internal/msg

# Chaos tier (E15): seeded crash schedules over every machine flavor
# under the race detector, plus the chaos-harness unit tests. Seeds are
# fixed in the tests, so failures reproduce bit-for-bit.
chaos:
	$(GO) test -race -run 'TestE15' ./internal/exp
	$(GO) test -race ./internal/chaos

# Overload tier (E16): seeded open-loop load ramps over every machine
# flavor under the race detector, plus the overload-harness unit tests.
# Seeds are fixed, so failures reproduce bit-for-bit.
overload:
	$(GO) test -race -run 'TestE16' ./internal/exp
	$(GO) test -race ./internal/overload

# Fabric tier (E17): the rack-scale package's full suite (golden-trace
# determinism, consistent-hash ring properties, whole-machine-kill
# chaos) plus the E17 chaos campaigns, all under the race detector.
# Seeds are fixed, so failures reproduce bit-for-bit. The E15/E16
# golden tables pinned by TestTablesGolden (race tier) double as the
# fabric-off regression diff: gating the fabric off must leave every
# earlier experiment byte-identical.
fabric:
	$(GO) test -race ./internal/fabric
	$(GO) test -race -run 'TestE17' ./internal/exp

# Reconcile tier (E19): the fleet reconciler's unit suite (membership
# repair, rolling upgrades, budget enforcement, actor failover) plus the
# E19 self-healing campaigns — kill, rolling upgrade, same-frame double
# kill — under the race detector. Seeds are fixed, so failures
# reproduce bit-for-bit.
reconcile:
	$(GO) test -race ./internal/reconcile
	$(GO) test -race -run 'TestE19' ./internal/exp

# Tenancy tier (E20): the tenant registry/ledger and seeded-adversary
# unit suites plus the E20 attack-matrix gate — every cell of the
# matrix (both machine flavors, both fabric control architectures)
# must audit 0 S1 / 0 S2 / 0 S3 — under the race detector. Seeds are
# fixed, so failures reproduce bit-for-bit.
tenancy:
	$(GO) test -race ./internal/tenant ./internal/adversary
	$(GO) test -race -run 'TestE20' ./internal/exp

# Partition tier (E21): the linearizability checker's unit suite, the
# fabric lease/partition/fencing tests, the reconciler's gray-failure
# regressions, and the E21 split-brain matrix — every schedule × flavor
# cell must be L1-clean with zero split samples — under the race
# detector. Seeds are fixed, so failures reproduce bit-for-bit.
partition:
	$(GO) test -race ./internal/linearize
	$(GO) test -race -run 'TestTransportFailure|TestOneWayCut|TestMinorityPartition|TestFailSlow|TestTakeoverFence|TestFlappingLink|TestPartitionedActor' ./internal/fabric ./internal/reconcile
	$(GO) test -race -run 'TestE21' ./internal/exp

# Simulator-speed guard: re-runs the BENCH_e17.json cell and fails on a
# >30% wall-clock regression. Machine-dependent by nature, so it is not
# part of `check`; CI runs it on its pinned runner class.
benchguard:
	NOCPU_BENCH_GUARD=1 $(GO) test -run 'TestE17BenchGuard' -count=1 ./internal/exp -v

check: vet lint build race fuzz chaos overload fabric reconcile tenancy partition

bench:
	$(GO) test -run=^$$ -bench . -benchtime=100x .

# Regenerate all experiment tables (E1-E21).
tables:
	$(GO) run ./cmd/nocpu-bench
