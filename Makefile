# Build/verification entry points. `make check` is the full gate used
# before merging: vet, build, race-enabled tests, and a short fuzz run
# of the wire-format decoder.

GO ?= go

.PHONY: build test vet race fuzz check bench tables

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Fuzz the bus wire-format decoder for 10s (regression corpus under
# internal/msg/testdata/fuzz is always replayed by plain `go test`).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzDecode -fuzztime=10s ./internal/msg

check: vet build race fuzz

bench:
	$(GO) test -run=^$$ -bench . -benchtime=100x .

# Regenerate all experiment tables (E1-E14).
tables:
	$(GO) run ./cmd/nocpu-bench
