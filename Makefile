# Build/verification entry points. `make check` is the full gate used
# before merging: vet, the nocpu-lint analyzer suite, build, race-enabled
# tests, and a short fuzz run of the wire-format decoder.

GO ?= go

.PHONY: build test vet lint race fuzz check bench tables

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Custom determinism/decentralization analyzers (internal/lint), run via
# the go vet -vettool protocol. See internal/lint/lint.go for the rules
# and the //lint:allow escape hatch.
lint:
	$(GO) build -o bin/nocpu-lint ./cmd/nocpu-lint
	$(GO) vet -vettool=bin/nocpu-lint ./...

race:
	$(GO) test -race ./...

# Fuzz the bus wire-format decoder for 10s (regression corpus under
# internal/msg/testdata/fuzz is always replayed by plain `go test`).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzDecode -fuzztime=10s ./internal/msg

check: vet lint build race fuzz

bench:
	$(GO) test -run=^$$ -bench . -benchtime=100x .

# Regenerate all experiment tables (E1-E14).
tables:
	$(GO) run ./cmd/nocpu-bench
