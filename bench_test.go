package nocpu

// One benchmark per experiment table (E1–E10 in DESIGN.md/EXPERIMENTS.md).
// Each benchmark drives the same scenario as its experiment at reduced
// scale and reports the *virtual-time* cost of the measured operation as
// "vns/op" (virtual nanoseconds); wall-clock ns/op additionally reflects
// simulator speed. Full tables: `go run ./cmd/nocpu-bench`.

import (
	"fmt"
	"testing"

	"nocpu/internal/bus"
	"nocpu/internal/core"
	"nocpu/internal/faultinject"
	"nocpu/internal/iommu"
	"nocpu/internal/kvs"
	"nocpu/internal/msg"
	"nocpu/internal/overload"
	"nocpu/internal/sim"
	"nocpu/internal/smartnic"
	"nocpu/internal/smartssd"
)

// benchRig is a booted machine with one ready KVS app and helpers to run
// operations to completion.
type benchRig struct {
	sys    *core.System
	store  *kvs.Store
	nextID msg.AppID
}

func newBenchRig(b *testing.B, opts core.Options, kvsOpts core.KVSOptions) *benchRig {
	b.Helper()
	opts.NoTrace = true
	sys, err := core.New(opts)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Boot(); err != nil {
		b.Fatal(err)
	}
	if err := sys.CreateFile("kv.dat", nil); err != nil {
		b.Fatal(err)
	}
	if sys.CPU != nil {
		sys.CPU.RegisterFile("kv.dat", core.FirstSSD)
	}
	if kvsOpts.File == "" {
		kvsOpts.File = "kv.dat"
	}
	if kvsOpts.App == 0 {
		kvsOpts.App = 1
	}
	store := sys.NewKVS(kvsOpts)
	if err := sys.WaitReady(store); err != nil {
		b.Fatal(err)
	}
	return &benchRig{sys: sys, store: store, nextID: kvsOpts.App + 1}
}

// op runs one KVS request to completion and returns the response status.
func (r *benchRig) op(b *testing.B, req kvs.Request) kvs.Status {
	b.Helper()
	var status kvs.Status
	done := false
	r.sys.NIC().Deliver(r.store.AppID(), kvs.EncodeRequest(req), func(bb []byte) {
		resp, err := kvs.DecodeResponse(bb)
		if err != nil {
			b.Fatal(err)
		}
		status = resp.Status
		done = true
	})
	// Step event by event for exact virtual-time accounting (RunFor would
	// quantize the clock to the polling interval).
	for !done && r.sys.Eng.Step() {
	}
	if !done {
		b.Fatal("op did not complete")
	}
	return status
}

// reportVirtual reports virtual time per iteration.
func reportVirtual(b *testing.B, start sim.Time, sys *core.System) {
	b.ReportMetric(float64(sys.Eng.Now().Sub(start))/float64(b.N), "vns/op")
}

// runInitIterations measures b.N application initializations, refreshing
// the machine every refreshEvery iterations (outside the timer) so
// per-app state — IOMMU contexts, shared regions — cannot exhaust
// simulated memory at large b.N.
func runInitIterations(b *testing.B, opts core.Options, mode kvs.Mode, refreshEvery int) {
	var sys *core.System
	var nextID msg.AppID
	rebuild := func() {
		s, err := core.New(opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Boot(); err != nil {
			b.Fatal(err)
		}
		if err := s.CreateFile("kv.dat", nil); err != nil {
			b.Fatal(err)
		}
		if s.CPU != nil {
			s.CPU.RegisterFile("kv.dat", core.FirstSSD)
		}
		sys, nextID = s, 1
	}
	rebuild()
	var vns sim.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%refreshEvery == 0 {
			b.StopTimer()
			rebuild()
			b.StartTimer()
		}
		cfg := kvs.Config{App: nextID, FileName: "kv.dat", QueueEntries: 32, Mode: mode}
		if mode == kvs.ModeDecentralized {
			cfg.Memctrl = core.ControlID
		} else {
			cfg.Kernel = core.ControlID
		}
		nextID++
		st := kvs.New(cfg)
		ready := false
		st.OnReady = func(err error) {
			if err != nil {
				b.Fatal(err)
			}
			ready = true
		}
		t0 := sys.Eng.Now()
		sys.NIC().AddApp(st)
		for !ready && sys.Eng.Step() {
		}
		if !ready {
			b.Fatal("init did not complete")
		}
		vns += sys.Eng.Now().Sub(t0)
	}
	b.ReportMetric(float64(vns)/float64(b.N), "vns/op")
}

// BenchmarkE1InitSequence measures one full Figure-2 application
// initialization (discover → open → alloc → grant → connect → ready).
func BenchmarkE1InitSequence(b *testing.B) {
	for _, flavor := range []core.Flavor{core.Decentralized, core.Centralized} {
		b.Run(flavor.String(), func(b *testing.B) {
			opts := core.Options{Flavor: flavor, Seed: 1, NoTrace: true}
			mode := kvs.ModeDecentralized
			if flavor == core.Centralized {
				mode = kvs.ModeCentralDirect
			}
			runInitIterations(b, opts, mode, 100)
		})
	}
}

// BenchmarkE2Dataplane measures one KVS get end to end (network edge to
// network edge) per data-plane configuration.
func BenchmarkE2Dataplane(b *testing.B) {
	cases := []struct {
		name     string
		flavor   core.Flavor
		mediated bool
	}{
		{"p2p-decentralized", core.Decentralized, false},
		{"kernel-mediated", core.Centralized, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			rig := newBenchRig(b, core.Options{Flavor: c.flavor, Seed: 2},
				core.KVSOptions{QueueEntries: 128, Mediated: c.mediated})
			rig.op(b, kvs.Request{Op: kvs.OpPut, Key: "k", Value: make([]byte, 512)})
			b.ResetTimer()
			start := rig.sys.Eng.Now()
			for i := 0; i < b.N; i++ {
				if s := rig.op(b, kvs.Request{Op: kvs.OpGet, Key: "k"}); s != kvs.StatusOK {
					b.Fatalf("get status %d", s)
				}
			}
			reportVirtual(b, start, rig.sys)
		})
	}
}

// BenchmarkE3SetupScalability measures the makespan of 16 concurrent app
// initializations (fresh machine every few iterations, outside the
// timer).
func BenchmarkE3SetupScalability(b *testing.B) {
	for _, flavor := range []core.Flavor{core.Decentralized, core.Centralized} {
		b.Run(flavor.String(), func(b *testing.B) {
			opts := core.Options{Flavor: flavor, Seed: 3, NoTrace: true}
			var sys *core.System
			var nextID msg.AppID
			rebuild := func() {
				s, err := core.New(opts)
				if err != nil {
					b.Fatal(err)
				}
				if err := s.Boot(); err != nil {
					b.Fatal(err)
				}
				if err := s.CreateFile("kv.dat", nil); err != nil {
					b.Fatal(err)
				}
				if s.CPU != nil {
					s.CPU.RegisterFile("kv.dat", core.FirstSSD)
				}
				sys, nextID = s, 1
			}
			rebuild()
			var vns sim.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i > 0 && i%6 == 0 {
					b.StopTimer()
					rebuild()
					b.StartTimer()
				}
				const batch = 16
				ready := 0
				t0 := sys.Eng.Now()
				for j := 0; j < batch; j++ {
					cfg := kvs.Config{App: nextID, FileName: "kv.dat", QueueEntries: 16}
					if flavor == core.Centralized {
						cfg.Mode, cfg.Kernel = kvs.ModeCentralDirect, core.ControlID
					} else {
						cfg.Memctrl = core.ControlID
					}
					nextID++
					st := kvs.New(cfg)
					st.OnReady = func(err error) {
						if err != nil {
							b.Fatal(err)
						}
						ready++
					}
					sys.NIC().AddApp(st)
				}
				for ready < batch && sys.Eng.Step() {
				}
				if ready < batch {
					b.Fatal("setup batch incomplete")
				}
				vns += sys.Eng.Now().Sub(t0)
			}
			b.ReportMetric(float64(vns)/float64(b.N), "vns/op")
		})
	}
}

// noiseApp mirrors exp's control-plane noisy neighbor.
type noiseApp struct {
	id    msg.AppID
	bytes uint64
	rt    *smartnic.Runtime
	stop  bool
}

func (a *noiseApp) AppID() msg.AppID { return a.id }
func (a *noiseApp) Boot(rt *smartnic.Runtime) {
	a.rt = rt
	a.loop()
}
func (a *noiseApp) ServeNetwork(p []byte, reply func([]byte)) { reply(p) }
func (a *noiseApp) PeerFailed(msg.DeviceID)                   {}
func (a *noiseApp) loop() {
	if a.stop {
		return
	}
	a.rt.AllocShared(core.ControlID, a.bytes, func(va uint64, err error) {
		if err != nil {
			return
		}
		a.rt.Free(core.ControlID, va, a.bytes, func(error) { a.loop() })
	})
}

// BenchmarkE4Isolation measures a victim get while 8 noisy tenants hammer
// the control plane.
func BenchmarkE4Isolation(b *testing.B) {
	cases := []struct {
		name     string
		flavor   core.Flavor
		mediated bool
	}{
		{"decentralized-victim", core.Decentralized, false},
		{"mediated-victim", core.Centralized, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			rig := newBenchRig(b, core.Options{Flavor: c.flavor, Seed: 4, ExtraNICs: 1},
				core.KVSOptions{QueueEntries: 128, Mediated: c.mediated})
			rig.op(b, kvs.Request{Op: kvs.OpPut, Key: "k", Value: make([]byte, 512)})
			for i := 0; i < 8; i++ {
				rig.sys.NICs[1].AddApp(&noiseApp{id: msg.AppID(100 + i), bytes: 256 << 10})
			}
			b.ResetTimer()
			start := rig.sys.Eng.Now()
			for i := 0; i < b.N; i++ {
				rig.op(b, kvs.Request{Op: kvs.OpGet, Key: "k"})
			}
			reportVirtual(b, start, rig.sys)
		})
	}
}

// BenchmarkE5FaultRecovery measures one kill → detect → reset → remount →
// rescan cycle. Each reconnection allocates a fresh shared region, so the
// machine is refreshed periodically outside the timer.
func BenchmarkE5FaultRecovery(b *testing.B) {
	opts := core.Options{
		Flavor: core.Decentralized, Seed: 5, Watchdog: 500 * sim.Microsecond,
		NoTrace: true,
	}
	var rig *benchRig
	rebuild := func() {
		rig = newBenchRig(b, opts, core.KVSOptions{QueueEntries: 64})
		for i := 0; i < 50; i++ {
			rig.op(b, kvs.Request{Op: kvs.OpPut, Key: fmt.Sprintf("k%02d", i), Value: make([]byte, 256)})
		}
	}
	rebuild()
	var vns sim.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%25 == 0 {
			b.StopTimer()
			rebuild()
			b.StartTimer()
		}
		t0 := rig.sys.Eng.Now()
		rig.sys.SSD().Kill()
		deadline := t0.Add(5 * sim.Second)
		for !(rig.store.Ready() && rig.sys.SSD().Ready()) {
			rig.sys.Eng.RunFor(50 * sim.Microsecond)
			if rig.sys.Eng.Now() > deadline {
				b.Fatal("recovery incomplete")
			}
		}
		vns += rig.sys.Eng.Now().Sub(t0)
	}
	b.ReportMetric(float64(vns)/float64(b.N), "vns/op")
}

// BenchmarkE6IOMMUTLB measures gets with the device TLB on and off.
func BenchmarkE6IOMMUTLB(b *testing.B) {
	for _, c := range []struct {
		name string
		cfg  iommu.Config
	}{{"tlb-default", iommu.DefaultConfig}, {"tlb-disabled", iommu.Disabled}} {
		b.Run(c.name, func(b *testing.B) {
			opts := core.Options{Flavor: core.Decentralized, Seed: 6}
			opts.NIC.Device.IOMMU = c.cfg
			opts.SSD.Device.IOMMU = c.cfg
			rig := newBenchRig(b, opts, core.KVSOptions{QueueEntries: 128})
			rig.op(b, kvs.Request{Op: kvs.OpPut, Key: "k", Value: make([]byte, 512)})
			b.ResetTimer()
			start := rig.sys.Eng.Now()
			for i := 0; i < b.N; i++ {
				rig.op(b, kvs.Request{Op: kvs.OpGet, Key: "k"})
			}
			reportVirtual(b, start, rig.sys)
		})
	}
}

// discProbe is a one-shot discovery prober.
type discProbe struct {
	id   msg.AppID
	q    string
	done bool
	fail bool
}

func (p *discProbe) AppID() msg.AppID { return p.id }
func (p *discProbe) Boot(rt *smartnic.Runtime) {
	rt.Discover(p.q, func(_ msg.DeviceID, _ string, err error) {
		p.done, p.fail = true, err != nil
	})
}
func (p *discProbe) ServeNetwork(bb []byte, reply func([]byte)) { reply(bb) }
func (p *discProbe) PeerFailed(msg.DeviceID)                    {}

// BenchmarkE7Discovery measures one broadcast discovery on machines of
// different sizes.
func BenchmarkE7Discovery(b *testing.B) {
	tiny := smartssd.Config{
		Geometry: smartssd.FlashGeometry{Channels: 1, DiesPerChan: 1, BlocksPerDie: 16, PagesPerBlock: 16, PageSize: 4096},
		FS:       smartssd.FSConfig{MaxFiles: 4},
	}
	for _, devs := range []int{8, 64} {
		b.Run(fmt.Sprintf("devices-%d", devs), func(b *testing.B) {
			opts := core.Options{
				Flavor: core.Decentralized, Seed: 7, NoTrace: true,
				SSD: tiny, ExtraSSDs: devs - 1, MemoryBytes: 512 << 20,
			}
			sys := core.MustNew(opts)
			if err := sys.Boot(); err != nil {
				b.Fatal(err)
			}
			created := false
			sys.SSDs[len(sys.SSDs)-1].FS().Create("far.dat", func(_ *smartssd.File, err error) {
				if err != nil {
					b.Fatal(err)
				}
				created = true
			})
			for !created {
				sys.Eng.RunFor(sim.Millisecond)
			}
			b.ResetTimer()
			start := sys.Eng.Now()
			id := msg.AppID(1)
			for i := 0; i < b.N; i++ {
				p := &discProbe{id: id, q: "file:far.dat"}
				id++
				sys.NIC().AddApp(p)
				for !p.done {
					sys.Eng.RunFor(10 * sim.Microsecond)
				}
				if p.fail {
					b.Fatal("discovery failed")
				}
			}
			b.ReportMetric(float64(sys.Eng.Now().Sub(start))/float64(b.N), "vns/op")
		})
	}
}

// pairApp performs alloc/free pairs on demand (E8's measured operation).
type pairApp struct {
	id msg.AppID
	rt *smartnic.Runtime
}

func (a *pairApp) AppID() msg.AppID                          { return a.id }
func (a *pairApp) Boot(rt *smartnic.Runtime)                 { a.rt = rt }
func (a *pairApp) ServeNetwork(p []byte, reply func([]byte)) { reply(p) }
func (a *pairApp) PeerFailed(msg.DeviceID)                   {}
func (a *pairApp) pair(bytes uint64, done func(error)) {
	a.rt.AllocShared(core.ControlID, bytes, func(va uint64, err error) {
		if err != nil {
			done(err)
			return
		}
		a.rt.Free(core.ControlID, va, bytes, done)
	})
}

// BenchmarkE8MemoryOps measures one 64 KiB alloc+free pair through each
// control plane.
func BenchmarkE8MemoryOps(b *testing.B) {
	for _, flavor := range []core.Flavor{core.Decentralized, core.Centralized} {
		b.Run(flavor.String(), func(b *testing.B) {
			sys := core.MustNew(core.Options{Flavor: flavor, Seed: 8, NoTrace: true})
			if err := sys.Boot(); err != nil {
				b.Fatal(err)
			}
			app := &pairApp{id: 1}
			sys.NIC().AddApp(app)
			sys.Eng.RunFor(sim.Millisecond)
			if app.rt == nil {
				b.Fatal("app not booted")
			}
			b.ResetTimer()
			start := sys.Eng.Now()
			for i := 0; i < b.N; i++ {
				done := false
				app.pair(64<<10, func(err error) {
					if err != nil {
						b.Fatal(err)
					}
					done = true
				})
				for !done {
					sys.Eng.RunFor(10 * sim.Microsecond)
				}
			}
			b.ReportMetric(float64(sys.Eng.Now().Sub(start))/float64(b.N), "vns/op")
		})
	}
}

// BenchmarkE9Doorbell measures gets with and without doorbell batching.
func BenchmarkE9Doorbell(b *testing.B) {
	for _, batch := range []int{1, 4} {
		b.Run(fmt.Sprintf("kick-%d", batch), func(b *testing.B) {
			opts := core.Options{Flavor: core.Decentralized, Seed: 9}
			opts.SSD.NotifyBatch = batch
			rig := newBenchRig(b, opts, core.KVSOptions{QueueEntries: 128})
			rig.op(b, kvs.Request{Op: kvs.OpPut, Key: "k", Value: make([]byte, 512)})
			b.ResetTimer()
			start := rig.sys.Eng.Now()
			for i := 0; i < b.N; i++ {
				rig.op(b, kvs.Request{Op: kvs.OpGet, Key: "k"})
			}
			reportVirtual(b, start, rig.sys)
		})
	}
}

// BenchmarkE11ValueCache measures a repeat get with and without the
// NIC-side value cache (extension experiment).
func BenchmarkE11ValueCache(b *testing.B) {
	for _, entries := range []int{0, 64} {
		b.Run(fmt.Sprintf("cache-%d", entries), func(b *testing.B) {
			sys := core.MustNew(core.Options{Flavor: core.Decentralized, Seed: 11, NoTrace: true})
			if err := sys.Boot(); err != nil {
				b.Fatal(err)
			}
			if err := sys.CreateFile("kv.dat", nil); err != nil {
				b.Fatal(err)
			}
			store := kvs.New(kvs.Config{
				App: 1, FileName: "kv.dat", Memctrl: core.ControlID,
				QueueEntries: 128, CacheEntries: entries,
			})
			sys.NIC().AddApp(store)
			if err := sys.WaitReady(store); err != nil {
				b.Fatal(err)
			}
			rig := &benchRig{sys: sys, store: store}
			rig.op(b, kvs.Request{Op: kvs.OpPut, Key: "hot", Value: make([]byte, 512)})
			b.ResetTimer()
			start := sys.Eng.Now()
			for i := 0; i < b.N; i++ {
				if s := rig.op(b, kvs.Request{Op: kvs.OpGet, Key: "hot"}); s != kvs.StatusOK {
					b.Fatalf("status %d", s)
				}
			}
			reportVirtual(b, start, sys)
		})
	}
}

// demandBenchApp reserves a lazy region for E12's benchmark.
type demandBenchApp struct {
	id    msg.AppID
	lazy  bool
	bytes uint64
	rt    *smartnic.Runtime
	va    uint64
	ready bool
}

func (a *demandBenchApp) AppID() msg.AppID { return a.id }
func (a *demandBenchApp) Boot(rt *smartnic.Runtime) {
	a.rt = rt
	if a.lazy {
		a.va = rt.ReserveLazy(core.ControlID, a.bytes, 1)
		a.ready = true
		return
	}
	rt.AllocShared(core.ControlID, a.bytes, func(va uint64, err error) {
		if err != nil {
			panic(err)
		}
		a.va, a.ready = va, true
	})
}
func (a *demandBenchApp) ServeNetwork(p []byte, reply func([]byte)) { reply(p) }
func (a *demandBenchApp) PeerFailed(msg.DeviceID)                   {}

// BenchmarkE12DemandPaging measures a first-touch write into an unbacked
// page (fault + bus alloc + retry, plus a recycling free so physical
// memory stays bounded for any b.N) vs a warm write into a pre-backed
// page.
func BenchmarkE12DemandPaging(b *testing.B) {
	for _, lazy := range []bool{true, false} {
		name := "eager-warm"
		if lazy {
			name = "lazy-first-touch"
		}
		b.Run(name, func(b *testing.B) {
			sys := core.MustNew(core.Options{
				Flavor: core.Decentralized, Seed: 12, NoTrace: true,
				MemoryBytes: 256 << 20,
			})
			if err := sys.Boot(); err != nil {
				b.Fatal(err)
			}
			const eagerPages = 4096
			bytes := uint64(eagerPages) * 4096
			if lazy {
				// Virtual reservation only; pages materialize on touch
				// and are recycled below, so any b.N fits.
				bytes = 1 << 32
			}
			app := &demandBenchApp{id: 1, lazy: lazy, bytes: bytes}
			sys.NIC().AddApp(app)
			for !app.ready {
				sys.Eng.RunFor(10 * sim.Microsecond)
			}
			port := sys.NIC().Device().DMA()
			b.ResetTimer()
			start := sys.Eng.Now()
			for i := 0; i < b.N; i++ {
				done := false
				if lazy {
					va := app.va + (uint64(i)%((1<<32)/4096))*4096
					port.Write(1, iommu.VirtAddr(va), []byte{1}, func(err error) {
						if err != nil {
							b.Fatal(err)
						}
						// Recycle: return the page so physical memory is
						// bounded (cost included in the metric; see note).
						app.rt.Free(core.ControlID, va&^4095, 4096, func(err error) {
							if err != nil {
								b.Fatal(err)
							}
							done = true
						})
					})
				} else {
					va := app.va + (uint64(i)%eagerPages)*4096
					port.Write(1, iommu.VirtAddr(va), []byte{1}, func(err error) {
						if err != nil {
							b.Fatal(err)
						}
						done = true
					})
				}
				for !done && sys.Eng.Step() {
				}
			}
			reportVirtual(b, start, sys)
		})
	}
}

// hugeBenchApp allocates one shared region per iteration (E13).
type hugeBenchApp struct {
	id    msg.AppID
	rt    *smartnic.Runtime
	ready bool
}

func (a *hugeBenchApp) AppID() msg.AppID                          { return a.id }
func (a *hugeBenchApp) Boot(rt *smartnic.Runtime)                 { a.rt = rt; a.ready = true }
func (a *hugeBenchApp) ServeNetwork(p []byte, reply func([]byte)) { reply(p) }
func (a *hugeBenchApp) PeerFailed(msg.DeviceID)                   {}

// BenchmarkE13HugePages measures allocating+mapping an 8 MiB region with
// 4 KiB vs 2 MiB pages.
func BenchmarkE13HugePages(b *testing.B) {
	for _, huge := range []bool{false, true} {
		name := "4k"
		if huge {
			name = "huge"
		}
		b.Run(name, func(b *testing.B) {
			sys := core.MustNew(core.Options{
				Flavor: core.Decentralized, Seed: 13, NoTrace: true,
				MemoryBytes: 1 << 30,
			})
			if err := sys.Boot(); err != nil {
				b.Fatal(err)
			}
			app := &hugeBenchApp{id: 1}
			sys.NIC().AddApp(app)
			sys.Eng.RunFor(sim.Millisecond)
			if !app.ready {
				b.Fatal("app not booted")
			}
			const region = 8 << 20
			b.ResetTimer()
			start := sys.Eng.Now()
			for i := 0; i < b.N; i++ {
				done := false
				cb := func(va uint64, err error) {
					if err != nil {
						b.Fatal(err)
					}
					// Free immediately so memory does not run out across
					// iterations.
					app.rt.Free(core.ControlID, va, region, func(err error) {
						if err != nil {
							b.Fatal(err)
						}
						done = true
					})
				}
				if huge {
					app.rt.AllocSharedHuge(core.ControlID, region, cb)
				} else {
					app.rt.AllocShared(core.ControlID, region, cb)
				}
				for !done && sys.Eng.Step() {
				}
			}
			reportVirtual(b, start, sys)
		})
	}
}

// BenchmarkE14FaultRetry measures one KVS get under 5% bus-message loss
// (setup runs fault-free, then the drop rule switches on). The P2P data
// plane never crosses the bus so loss costs it nothing; every
// kernel-mediated I/O is a bus round trip and pays a retransmission
// timeout per lost message.
func BenchmarkE14FaultRetry(b *testing.B) {
	cases := []struct {
		name     string
		flavor   core.Flavor
		mediated bool
	}{
		{"p2p-decentralized", core.Decentralized, false},
		{"kernel-mediated", core.Centralized, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			plane := faultinject.New(14)
			rig := newBenchRig(b, core.Options{Flavor: c.flavor, Seed: 14, FaultPlane: plane},
				core.KVSOptions{QueueEntries: 128, Mediated: c.mediated})
			rig.op(b, kvs.Request{Op: kvs.OpPut, Key: "k", Value: make([]byte, 512)})
			plane.Add(faultinject.Rule{Layer: faultinject.LayerBus, Op: faultinject.Drop, Prob: 0.05})
			b.ResetTimer()
			start := rig.sys.Eng.Now()
			for i := 0; i < b.N; i++ {
				if s := rig.op(b, kvs.Request{Op: kvs.OpGet, Key: "k"}); s != kvs.StatusOK {
					b.Fatalf("get status %d", s)
				}
			}
			reportVirtual(b, start, rig.sys)
		})
	}
}

// BenchmarkE10BusSensitivity measures app initialization across bus hop
// latencies (data-plane gets are covered by E2).
func BenchmarkE10BusSensitivity(b *testing.B) {
	for _, hop := range []sim.Duration{1 * sim.Microsecond, 100 * sim.Microsecond} {
		b.Run(hop.String(), func(b *testing.B) {
			opts := core.Options{Flavor: core.Decentralized, Seed: 10, NoTrace: true}
			opts.Bus = bus.DefaultConfig
			opts.Bus.HopLatency = hop
			runInitIterations(b, opts, kvs.ModeDecentralized, 100)
		})
	}
}

// BenchmarkE15CrashRejoin measures one full crash-restart-rejoin cycle
// of the SSD under a 500µs bus watchdog: silent death, watchdog
// detection, bus Reset, device reboot, Hello with a bumped incarnation,
// rejoin. This is the recovery loop the E15 chaos schedules exercise at
// scale; vns/op is the virtual time of the whole cycle.
func BenchmarkE15CrashRejoin(b *testing.B) {
	rig := newBenchRig(b,
		core.Options{Flavor: core.Decentralized, Seed: 15, Watchdog: 500 * sim.Microsecond},
		core.KVSOptions{QueueEntries: 128})
	sys := rig.sys
	b.ResetTimer()
	start := sys.Eng.Now()
	for i := 0; i < b.N; i++ {
		sys.SSD().Kill()
		deadline := sys.Eng.Now().Add(sim.Second)
		for sys.Bus.Alive(core.FirstSSD) && sys.Eng.Now() < deadline {
			sys.Eng.RunFor(10 * sim.Microsecond)
		}
		for !sys.Bus.Alive(core.FirstSSD) && sys.Eng.Now() < deadline {
			sys.Eng.RunFor(10 * sim.Microsecond)
		}
		if !sys.Bus.Alive(core.FirstSSD) {
			b.Fatal("ssd never rejoined")
		}
	}
	if got := sys.Bus.Stats().Rejoins; got < uint64(b.N) {
		b.Fatalf("rejoins = %d, want >= %d", got, b.N)
	}
	reportVirtual(b, start, sys)
}

// BenchmarkE16Overload drives one open-loop window at 2× saturation
// against a machine with every overload defense armed — the overload the
// E16 ramp sweeps at full scale. Each iteration is one 2 ms window;
// goodput/s is the within-deadline completion rate of the final window
// (short windows are transient-heavy — the steady-state curves are the
// E16 tables). The Q3 check inside the loop asserts no request is ever
// silently lost, even at 2× offered load.
func BenchmarkE16Overload(b *testing.B) {
	opts := core.Options{Flavor: core.Decentralized, Seed: 16, NoTrace: true}
	opts.Bus = bus.DefaultConfig
	opts.Bus.CreditWindow = 32
	opts.Bus.IngressBound = 64
	opts.Costs.DMAWindow = 256
	opts.NIC.RxQueueBound = 128
	rig := newBenchRig(b, opts, core.KVSOptions{QueueEntries: 128, InflightBound: 32})
	const keys = 64
	for i := 0; i < keys; i++ {
		rig.op(b, kvs.Request{Op: kvs.OpPut, Key: fmt.Sprintf("key-%05d", i), Value: make([]byte, 64)})
	}
	plan := overload.Plan{
		Seed:        16,
		Saturation:  100_000, // ≈ the E16-calibrated saturation of this flavor
		Multipliers: []float64{2},
		Window:      2 * sim.Millisecond,
		Deadline:    sim.Millisecond,
	}.MustCompile()
	target := func(p []byte, reply func([]byte)) {
		rig.sys.NIC().Deliver(rig.store.AppID(), p, reply)
	}
	classify := func(resp []byte) overload.Outcome {
		r, err := kvs.DecodeResponse(resp)
		if err != nil || r.Status == kvs.StatusError {
			return overload.OutcomeError
		}
		if r.Status == kvs.StatusShed {
			return overload.OutcomeShed
		}
		return overload.OutcomeOK
	}
	gen := func(rd *sim.Rand, seq uint64, deadline uint64) []byte {
		return kvs.EncodeRequest(kvs.Request{
			Op: kvs.OpGet, Key: fmt.Sprintf("key-%05d", rd.Intn(keys)), Deadline: deadline,
		})
	}
	b.ResetTimer()
	start := rig.sys.Eng.Now()
	var goodput float64
	for i := 0; i < b.N; i++ {
		res := plan.RunStep(0, rig.sys.Eng, target, gen, classify)
		if res.Resolved() != res.Sent {
			b.Fatalf("%d of %d requests unresolved (Q3)", res.Sent-res.Resolved(), res.Sent)
		}
		goodput = res.Goodput
	}
	b.ReportMetric(goodput, "goodput/s")
	reportVirtual(b, start, rig.sys)
}
